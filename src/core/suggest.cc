#include "core/suggest.h"

#include <algorithm>
#include <map>
#include <unordered_map>
#include <unordered_set>

#include "rules/library.h"
#include "rules/parser.h"
#include "temporal/allen.h"
#include "temporal/allen_network.h"
#include "util/string_util.h"

namespace tecore {
namespace core {

namespace {

/// Pair statistics for one predicate.
struct PredicateProfile {
  size_t diff_object_pairs = 0;      // same subject, different objects
  size_t diff_object_overlaps = 0;   // ... with intersecting intervals
  size_t overlap_pairs = 0;          // same subject, intersecting intervals
  size_t overlap_disagreements = 0;  // ... with different objects
};

}  // namespace

std::vector<Suggestion> SuggestConstraints(const rdf::TemporalGraph& graph,
                                           const SuggestOptions& options) {
  std::vector<Suggestion> suggestions;
  const auto predicate_counts = graph.PredicateCounts();

  // ---- per-predicate pair profiling (disjointness / functionality).
  for (const auto& [pred, count] : predicate_counts) {
    if (count < options.min_support) continue;
    PredicateProfile profile;
    // Group facts by subject via the subject-predicate index.
    std::unordered_set<rdf::TermId> seen_subjects;
    size_t examined = 0;
    for (rdf::FactId id : graph.FactsWithPredicate(pred)) {
      if (examined > options.max_subject_sample) break;
      const rdf::TemporalFact& fact = graph.fact(id);
      if (!seen_subjects.insert(fact.subject).second) continue;
      const auto& bucket =
          graph.FactsWithSubjectPredicate(fact.subject, pred);
      for (size_t i = 0; i < bucket.size(); ++i) {
        for (size_t j = i + 1; j < bucket.size(); ++j) {
          const rdf::TemporalFact& a = graph.fact(bucket[i]);
          const rdf::TemporalFact& b = graph.fact(bucket[j]);
          ++examined;
          const bool overlap = a.interval.Intersects(b.interval);
          if (a.object != b.object) {
            ++profile.diff_object_pairs;
            if (overlap) ++profile.diff_object_overlaps;
          }
          if (overlap) {
            ++profile.overlap_pairs;
            if (a.object != b.object) ++profile.overlap_disagreements;
          }
        }
      }
    }
    const std::string name = graph.dict().Lookup(pred).lexical();
    if (profile.diff_object_pairs >= options.min_support) {
      const double violation =
          static_cast<double>(profile.diff_object_overlaps) /
          static_cast<double>(profile.diff_object_pairs);
      if (1.0 - violation >= options.min_confidence) {
        auto rule = rules::MakeTemporalDisjointness(name);
        if (rule.ok()) {
          Suggestion suggestion;
          suggestion.rule = *rule;
          suggestion.support = profile.diff_object_pairs;
          suggestion.violation_rate = violation;
          suggestion.rationale = StringPrintf(
              "%zu same-subject '%s' pairs with different objects; only "
              "%.1f%% overlap in time",
              profile.diff_object_pairs, name.c_str(), 100.0 * violation);
          suggestions.push_back(std::move(suggestion));
        }
      }
    }
    if (profile.overlap_pairs >= options.min_support) {
      const double violation =
          static_cast<double>(profile.overlap_disagreements) /
          static_cast<double>(profile.overlap_pairs);
      if (1.0 - violation >= options.min_confidence) {
        auto rule = rules::MakeFunctionalDuringOverlap(name);
        if (rule.ok()) {
          Suggestion suggestion;
          suggestion.rule = *rule;
          suggestion.support = profile.overlap_pairs;
          suggestion.violation_rate = violation;
          suggestion.rationale = StringPrintf(
              "%zu temporally-overlapping '%s' pairs; %.1f%% disagree on "
              "the object",
              profile.overlap_pairs, name.c_str(), 100.0 * violation);
          suggestions.push_back(std::move(suggestion));
        }
      }
    }
  }

  // ---- precedence mining over predicate pairs.
  size_t pairs_examined = 0;
  for (size_t pi = 0;
       pi < predicate_counts.size() && pairs_examined < options.max_predicate_pairs;
       ++pi) {
    for (size_t qi = 0;
         qi < predicate_counts.size() && pairs_examined < options.max_predicate_pairs;
         ++qi) {
      if (pi == qi) continue;
      const rdf::TermId p = predicate_counts[pi].first;
      const rdf::TermId q = predicate_counts[qi].first;
      ++pairs_examined;
      size_t support = 0, violations = 0;
      std::unordered_set<rdf::TermId> seen_subjects;
      for (rdf::FactId id : graph.FactsWithPredicate(p)) {
        if (support > options.max_subject_sample) break;
        const rdf::TemporalFact& fact = graph.fact(id);
        if (!seen_subjects.insert(fact.subject).second) continue;
        const auto& p_bucket =
            graph.FactsWithSubjectPredicate(fact.subject, p);
        const auto& q_bucket =
            graph.FactsWithSubjectPredicate(fact.subject, q);
        for (rdf::FactId pid : p_bucket) {
          for (rdf::FactId qid : q_bucket) {
            ++support;
            if (graph.fact(pid).interval.begin() >=
                graph.fact(qid).interval.begin()) {
              ++violations;
            }
          }
        }
      }
      if (support < options.min_support) continue;
      const double violation =
          static_cast<double>(violations) / static_cast<double>(support);
      if (1.0 - violation < options.min_confidence) continue;
      // A begins before B: suggest the begin-precedence constraint.
      const std::string p_name = graph.dict().Lookup(p).lexical();
      const std::string q_name = graph.dict().Lookup(q).lexical();
      auto rule = rules::ParseSingleRule(StringPrintf(
          "precede_%s_%s: quad(x, %s, y, t) & quad(x, %s, z, t') "
          "-> begin(t) < begin(t') .",
          p_name.c_str(), q_name.c_str(), p_name.c_str(), q_name.c_str()));
      if (!rule.ok()) continue;
      Suggestion suggestion;
      suggestion.rule = *rule;
      suggestion.support = support;
      suggestion.violation_rate = violation;
      suggestion.rationale = StringPrintf(
          "'%s' begins before '%s' on %.1f%% of %zu shared-subject pairs",
          p_name.c_str(), q_name.c_str(), 100.0 * (1.0 - violation), support);
      suggestions.push_back(std::move(suggestion));
    }
  }

  // Deterministic order: strongest evidence first.
  std::sort(suggestions.begin(), suggestions.end(),
            [](const Suggestion& a, const Suggestion& b) {
              if (a.violation_rate != b.violation_rate) {
                return a.violation_rate < b.violation_rate;
              }
              return a.support > b.support;
            });
  return suggestions;
}

CompatibilityReport AnalyzeConstraintCompatibility(
    const rules::RuleSet& rules) {
  CompatibilityReport report;
  // Collect predicates of abstractable constraints:
  // quad(x, P, _, t) & quad(x, Q, _, t') -> allen(t, t'),  P != Q constant.
  std::map<std::string, int> predicate_ids;
  struct Edge {
    int p, q;
    temporal::AllenSet relations;
    const rules::Rule* rule;
  };
  std::vector<Edge> edges;
  for (const rules::Rule& rule : rules.rules) {
    if (rule.head.kind != rules::HeadKind::kCondition) continue;
    const auto* allen =
        std::get_if<logic::AllenAtom>(&*rule.head.condition);
    if (allen == nullptr) continue;
    if (rule.body.size() != 2) continue;
    const logic::QuadAtom& first = rule.body[0];
    const logic::QuadAtom& second = rule.body[1];
    if (first.predicate.is_variable() || second.predicate.is_variable()) {
      continue;
    }
    const std::string p_name = first.predicate.constant().lexical();
    const std::string q_name = second.predicate.constant().lexical();
    if (p_name == q_name) continue;  // self-pairs need object reasoning
    // Head must be allen(t, t') over the two body interval variables in
    // their textual order.
    if (first.time.kind() != logic::IntervalExpr::Kind::kVar ||
        second.time.kind() != logic::IntervalExpr::Kind::kVar ||
        allen->a.kind() != logic::IntervalExpr::Kind::kVar ||
        allen->b.kind() != logic::IntervalExpr::Kind::kVar) {
      continue;
    }
    temporal::AllenSet relations = allen->relations;
    int p_var = allen->a.var(), q_var = allen->b.var();
    if (p_var == second.time.var() && q_var == first.time.var()) {
      relations = relations.ConverseSet();  // head written swapped
    } else if (p_var != first.time.var() || q_var != second.time.var()) {
      continue;
    }
    auto intern = [&predicate_ids](const std::string& name) {
      auto [it, inserted] =
          predicate_ids.emplace(name, static_cast<int>(predicate_ids.size()));
      return it->second;
    };
    edges.push_back({intern(p_name), intern(q_name), relations, &rule});
  }
  if (edges.empty()) return report;

  temporal::AllenNetwork network(static_cast<int>(predicate_ids.size()));
  for (const Edge& edge : edges) {
    Status st = network.Constrain(edge.p, edge.q, edge.relations);
    if (!st.ok()) {
      report.possibly_consistent = false;
      report.problems.push_back(st.ToString());
    }
  }
  // Direct contradictions (empty edges) surface before propagation.
  for (const Edge& edge : edges) {
    if (network.RelationsBetween(edge.p, edge.q).Empty()) {
      report.possibly_consistent = false;
      report.problems.push_back(
          "constraints on the same predicate pair contradict each other "
          "(e.g. '" +
          (edge.rule->name.empty() ? edge.rule->ToString()
                                   : edge.rule->name) +
          "' clashes with another constraint)");
    }
  }
  if (report.possibly_consistent && !network.Propagate()) {
    report.possibly_consistent = false;
    report.problems.push_back(
        "constraint set is path-inconsistent: the Allen relations imposed "
        "between predicates cannot be jointly realized (e.g. a cyclic "
        "'before' chain)");
  }
  return report;
}

}  // namespace core
}  // namespace tecore
