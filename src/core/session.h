#ifndef TECORE_CORE_SESSION_H_
#define TECORE_CORE_SESSION_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/conflict.h"
#include "core/edits.h"
#include "core/resolver.h"
#include "core/suggest.h"
#include "kb/statistics.h"
#include "rdf/graph.h"
#include "rules/ast.h"
#include "util/status.h"

namespace tecore {
namespace core {

/// \brief The demo-UI workflow as an API.
///
/// The paper's Web UI lets a user (1) select a UTKG, (2) pick or edit
/// inference rules and constraints (with predicate auto-completion),
/// (3) compute the most probable conflict-free KG, and (4) browse result
/// statistics, consistent and conflicting statements. Session exposes the
/// same steps programmatically; the CLI and examples are thin shells
/// around it.
class Session {
 public:
  Session() = default;

  // ------------------------------------------------------------- 1. data
  /// \brief Load a ".tq" file as the session's UTKG.
  Status LoadGraphFile(const std::string& path);
  /// \brief Parse ".tq" text as the session's UTKG.
  Status LoadGraphText(std::string_view text);
  /// \brief Adopt an existing graph.
  void SetGraph(rdf::TemporalGraph graph);

  bool HasGraph() const { return graph_.has_value(); }
  const rdf::TemporalGraph& graph() const { return *graph_; }
  rdf::TemporalGraph& graph() { return *graph_; }

  /// \brief Descriptive statistics of the loaded UTKG.
  Result<kb::GraphStatistics> GraphStats() const;

  /// \brief IRIs starting with `prefix` — the auto-completion data of the
  /// Constraints Editor (Fig. 5).
  std::vector<std::string> CompletePredicate(const std::string& prefix) const;

  // ------------------------------------------------------------ 2. rules
  /// \brief Parse and append rules/constraints written in the rule
  /// language; returns how many were added.
  Result<size_t> AddRulesText(std::string_view text);
  /// \brief Append an already-parsed rule set.
  void AddRules(const rules::RuleSet& rules) {
    rules_.Merge(rules);
    ResetIncremental();
  }
  /// \brief Drop all rules.
  void ClearRules() {
    rules_ = rules::RuleSet();
    ResetIncremental();
  }

  const rules::RuleSet& rules() const { return rules_; }

  /// \brief All expressivity problems for the chosen solver (empty = OK).
  std::vector<std::string> ValidateRules(rules::SolverKind solver) const;

  /// \brief Mine candidate constraints from the loaded UTKG (the paper's
  /// "automatic suggestion of constraints" demonstration goal).
  Result<std::vector<Suggestion>> SuggestConstraints(
      const SuggestOptions& options = {}) const;

  /// \brief Predicate-level satisfiability pre-check of the current
  /// constraint set (Allen-algebra path consistency).
  CompatibilityReport AnalyzeRuleCompatibility() const {
    return AnalyzeConstraintCompatibility(rules_);
  }

  // ---------------------------------------------------------- 3. compute
  /// \brief Detect conflicts under the current constraints.
  Result<ConflictReport> DetectConflicts(
      ground::GroundingOptions grounding = {});

  /// \brief Run the full resolution pipeline.
  Result<ResolveResult> Resolve(const ResolveOptions& options);

  /// \brief Apply KG edits and re-solve incrementally: only components the
  /// edits dirty are re-solved, cached MAP states are spliced for the rest
  /// (see IncrementalResolver for the determinism contract). The first
  /// call (or a call with changed options) pays one full pipeline run to
  /// seed the state. Loading a new graph or touching the rules resets it.
  Result<ResolveResult> ApplyEdits(const std::vector<GraphEdit>& edits,
                                   const ResolveOptions& options);

  /// \brief Parse and apply an edit script (`+`/`-` prefixed fact lines).
  Result<ResolveResult> ApplyEditScript(std::string_view script,
                                        const ResolveOptions& options);

  /// \brief The live incremental state, if any (diagnostics/tests).
  const IncrementalResolver* incremental() const {
    return incremental_.get();
  }
  /// \brief Drop the incremental state (next ApplyEdits re-seeds).
  void ResetIncremental() { incremental_.reset(); }

  // ----------------------------------------------------------- 4. browse
  /// \brief Render a conflict with its facts (for the results browser).
  std::string DescribeConflict(const Conflict& conflict) const;

 private:
  std::optional<rdf::TemporalGraph> graph_;
  rules::RuleSet rules_;
  std::unique_ptr<IncrementalResolver> incremental_;
};

}  // namespace core
}  // namespace tecore

#endif  // TECORE_CORE_SESSION_H_
