#ifndef TECORE_CORE_SESSION_H_
#define TECORE_CORE_SESSION_H_

#include <memory>
#include <string>
#include <vector>

#include "api/engine.h"
#include "core/conflict.h"
#include "core/edits.h"
#include "core/resolver.h"
#include "core/suggest.h"
#include "kb/statistics.h"
#include "rdf/graph.h"
#include "rules/ast.h"
#include "util/status.h"

namespace tecore {
namespace core {

/// \brief The demo-UI workflow as an API.
///
/// The paper's Web UI lets a user (1) select a UTKG, (2) pick or edit
/// inference rules and constraints (with predicate auto-completion),
/// (3) compute the most probable conflict-free KG, and (4) browse result
/// statistics, consistent and conflicting statements. Session exposes the
/// same steps programmatically.
///
/// Since the service-API redesign, Session is a thin single-threaded shell
/// over api::Engine — the CLI, the server and this class all share one
/// audited concurrency contract. The mutable `graph()` accessor is gone
/// (callers could mutate the graph behind the incremental resolver without
/// a reset); mutate through `ApplyEdits`/`ApplyEditScript`/`SetGraph`
/// instead. `graph()` now returns the engine's immutable snapshot graph;
/// references obtained from it stay valid until the next mutating call.
class Session {
 public:
  Session() = default;

  // ------------------------------------------------------------- 1. data
  /// \brief Load a ".tq" file as the session's UTKG.
  Status LoadGraphFile(const std::string& path) {
    return Refresh(engine_.LoadGraphFile(path));
  }
  /// \brief Parse ".tq" text as the session's UTKG.
  Status LoadGraphText(std::string_view text) {
    return Refresh(engine_.LoadGraphText(text));
  }
  /// \brief Adopt an existing graph. (Session engines have no durable
  /// storage attached, so the engine's storage-only failure path is
  /// unreachable here.)
  void SetGraph(rdf::TemporalGraph graph) {
    snap_ = *engine_.SetGraph(std::move(graph));
  }

  bool HasGraph() const { return snap().has_graph(); }
  /// \brief The current snapshot graph (requires HasGraph()).
  const rdf::TemporalGraph& graph() const { return *snap().graph; }

  /// \brief Descriptive statistics of the loaded UTKG.
  Result<kb::GraphStatistics> GraphStats() const {
    return engine_.GraphStats();
  }

  /// \brief IRIs starting with `prefix` — the auto-completion data of the
  /// Constraints Editor (Fig. 5).
  std::vector<std::string> CompletePredicate(const std::string& prefix) const {
    return snap().CompletePredicate(prefix);
  }

  // ------------------------------------------------------------ 2. rules
  /// \brief Parse and append rules/constraints written in the rule
  /// language; returns how many were added.
  Result<size_t> AddRulesText(std::string_view text);
  /// \brief Append an already-parsed rule set.
  void AddRules(const rules::RuleSet& rules) {
    snap_ = *engine_.AddRules(rules);
  }
  /// \brief Drop all rules.
  void ClearRules() { snap_ = *engine_.ClearRules(); }

  const rules::RuleSet& rules() const { return *snap().rules; }

  /// \brief All expressivity problems for the chosen solver (empty = OK).
  std::vector<std::string> ValidateRules(rules::SolverKind solver) const;

  /// \brief Mine candidate constraints from the loaded UTKG (the paper's
  /// "automatic suggestion of constraints" demonstration goal).
  Result<std::vector<Suggestion>> SuggestConstraints(
      const SuggestOptions& options = {}) const {
    return snap().SuggestConstraints(options);
  }

  /// \brief Predicate-level satisfiability pre-check of the current
  /// constraint set (Allen-algebra path consistency).
  CompatibilityReport AnalyzeRuleCompatibility() const {
    return AnalyzeConstraintCompatibility(rules());
  }

  // ---------------------------------------------------------- 3. compute
  /// \brief Detect conflicts under the current constraints.
  Result<ConflictReport> DetectConflicts(
      ground::GroundingOptions grounding = {});

  /// \brief Run the full resolution pipeline.
  Result<ResolveResult> Resolve(const ResolveOptions& options);

  /// \brief Apply KG edits and re-solve incrementally: only components the
  /// edits dirty are re-solved, cached MAP states are spliced for the rest
  /// (see IncrementalResolver for the determinism contract). The first
  /// call (or a call with changed options) pays one full pipeline run to
  /// seed the state. Loading a new graph or touching the rules resets it.
  /// Edit term ids must reference the engine's live dictionary; textual
  /// callers should use ApplyEditScript, which parses and applies
  /// atomically.
  Result<ResolveResult> ApplyEdits(const std::vector<GraphEdit>& edits,
                                   const ResolveOptions& options);

  /// \brief Parse and apply an edit script (`+`/`-` prefixed fact lines).
  Result<ResolveResult> ApplyEditScript(std::string_view script,
                                        const ResolveOptions& options);

  /// \brief The live incremental state, if any (diagnostics/tests).
  const IncrementalResolver* incremental() const {
    return engine_.incremental_for_tests();
  }
  /// \brief Drop the incremental state (next ApplyEdits re-seeds).
  void ResetIncremental() { engine_.ResetIncremental(); }

  // ----------------------------------------------------------- 4. browse
  /// \brief Render a conflict with its facts (for the results browser).
  std::string DescribeConflict(const Conflict& conflict) const {
    return snap().DescribeConflict(conflict);
  }

  /// \brief The underlying thread-safe engine (shared with the server).
  api::Engine& engine() { return engine_; }
  const api::Engine& engine() const { return engine_; }

 private:
  /// Adopt the snapshot a write published (or report why it didn't).
  Status Refresh(Result<std::shared_ptr<const api::Snapshot>> published) {
    if (!published.ok()) return published.status();
    snap_ = std::move(*published);
    return Status::OK();
  }
  /// The cached snapshot backing reference-returning accessors.
  const api::Snapshot& snap() const {
    auto current = engine_.snapshot();
    if (snap_.get() != current.get()) snap_ = std::move(current);
    return *snap_;
  }

  api::Engine engine_;
  mutable std::shared_ptr<const api::Snapshot> snap_;
};

}  // namespace core
}  // namespace tecore

#endif  // TECORE_CORE_SESSION_H_
