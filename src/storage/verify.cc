#include "storage/verify.h"

#include <algorithm>

#include "storage/checkpoint.h"
#include "storage/fs.h"
#include "storage/wal.h"
#include "util/string_util.h"

namespace tecore {
namespace storage {

Result<KbVerifyReport> VerifyKbDir(const std::string& dir) {
  if (!IsDirectory(dir)) {
    return Status::IoError(StringPrintf("%s is not a directory", dir.c_str()));
  }
  KbVerifyReport report;
  report.dir = dir;

  if (CheckpointExists(dir)) {
    auto cp = LoadCheckpoint(dir);
    if (cp.ok()) {
      report.has_checkpoint = true;
      report.checkpoint_version = cp->version;
      report.recoverable_version = cp->version;
    } else {
      report.problems.push_back(cp.status().ToString());
    }
  }

  const std::string wal_path = JoinPath(dir, "wal.log");
  if (PathExists(wal_path)) {
    auto scan = Wal::ScanFile(wal_path);
    if (!scan.ok()) {
      report.problems.push_back(scan.status().ToString());
      return report;
    }
    report.wal_valid_bytes = scan->valid_bytes;
    report.wal_file_bytes = scan->file_bytes;
    report.wal_torn_tail = scan->torn_tail;
    for (const WalRecord& record : scan->records) {
      if (record.version <= report.checkpoint_version) continue;
      ++report.wal_records;
      report.recoverable_version =
          std::max(report.recoverable_version, record.version);
    }
  }
  return report;
}

}  // namespace storage
}  // namespace tecore
