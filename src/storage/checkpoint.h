#ifndef TECORE_STORAGE_CHECKPOINT_H_
#define TECORE_STORAGE_CHECKPOINT_H_

#include <cstdint>
#include <string>

#include "util/status.h"

namespace tecore {
namespace storage {

/// \brief One materialized snapshot of a KB on disk.
///
/// A checkpoint is a manifest (`MANIFEST`, small JSON) plus two data
/// files named by the version they capture:
///
///     graph-<version>.tq    canonical `.tq` text of the live graph
///     rules-<version>.tcr   rule-language concrete syntax of the rule set
///
/// The manifest records each data file's byte size and CRC32 so `verify`
/// and recovery can detect truncation or bit rot without trusting the
/// filesystem. Publication is atomic: data files are written and fsynced
/// first, then the manifest replaces the old one via tmp + fsync + rename
/// + directory fsync. A crash at any point leaves the previous checkpoint
/// fully intact — stale data files from an unpublished attempt are swept
/// on the next successful checkpoint.
struct Checkpoint {
  uint64_t version = 0;
  /// False when no graph was ever loaded (a KB can hold rules alone);
  /// distinct from an empty graph, which the engine treats as loaded.
  bool has_graph = false;
  std::string graph_text;
  std::string rules_text;
};

/// \brief True when `dir` contains a MANIFEST file.
bool CheckpointExists(const std::string& dir);

/// \brief Write `cp` as the new checkpoint for `dir` (creating `dir` if
/// needed) and delete data files from older checkpoints. Crash points:
/// `checkpoint:before_manifest` (data durable, manifest not swapped) and
/// I/O failure point `checkpoint:write`.
Status WriteCheckpoint(const std::string& dir, const Checkpoint& cp);

/// \brief Load and verify the checkpoint in `dir`. NotFound when no
/// MANIFEST exists; IoError when a data file is missing, truncated, or
/// fails its checksum (the KB is then unrecoverable from checkpoint —
/// callers surface this loudly rather than booting empty).
Result<Checkpoint> LoadCheckpoint(const std::string& dir);

}  // namespace storage
}  // namespace tecore

#endif  // TECORE_STORAGE_CHECKPOINT_H_
