#include "storage/checkpoint.h"

#include <utility>

#include "storage/crc32.h"
#include "storage/fault.h"
#include "storage/fs.h"
#include "util/json.h"
#include "util/string_util.h"

namespace tecore {
namespace storage {

namespace {

constexpr char kManifestName[] = "MANIFEST";
constexpr int64_t kManifestFormat = 1;

std::string GraphFileName(uint64_t version) {
  return StringPrintf("graph-%llu.tq", static_cast<unsigned long long>(version));
}

std::string RulesFileName(uint64_t version) {
  return StringPrintf("rules-%llu.tcr",
                      static_cast<unsigned long long>(version));
}

/// Describe one data file in the manifest.
util::Json FileEntry(const std::string& name, const std::string& contents) {
  util::Json entry = util::Json::Object();
  entry.Set("file", util::Json::Str(name));
  entry.Set("bytes", util::Json::Int(static_cast<int64_t>(contents.size())));
  entry.Set("crc32", util::Json::Int(static_cast<int64_t>(Crc32(contents))));
  return entry;
}

Result<std::string> LoadVerifiedFile(const std::string& dir,
                                     const util::Json& manifest,
                                     const char* key) {
  const util::Json* entry = manifest.Find(key);
  if (entry == nullptr || !entry->is_object()) {
    return Status::IoError(StringPrintf("MANIFEST in %s missing %s entry",
                                        dir.c_str(), key));
  }
  const std::string name = entry->GetString("file", "");
  if (name.empty()) {
    return Status::IoError(StringPrintf("MANIFEST in %s: %s entry has no file",
                                        dir.c_str(), key));
  }
  TECORE_ASSIGN_OR_RETURN(contents, ReadFile(JoinPath(dir, name)));
  const auto expected_bytes =
      static_cast<uint64_t>(entry->GetInt("bytes", -1));
  const auto expected_crc =
      static_cast<uint32_t>(entry->GetInt("crc32", -1));
  if (contents.size() != expected_bytes) {
    return Status::IoError(StringPrintf(
        "checkpoint file %s/%s: %zu bytes, manifest says %llu", dir.c_str(),
        name.c_str(), contents.size(),
        static_cast<unsigned long long>(expected_bytes)));
  }
  if (Crc32(contents) != expected_crc) {
    return Status::IoError(StringPrintf("checkpoint file %s/%s failed CRC32",
                                        dir.c_str(), name.c_str()));
  }
  return contents;
}

}  // namespace

bool CheckpointExists(const std::string& dir) {
  return PathExists(JoinPath(dir, kManifestName));
}

Status WriteCheckpoint(const std::string& dir, const Checkpoint& cp) {
  if (ShouldFailIo("checkpoint:write")) {
    return Status::IoError("injected checkpoint write failure");
  }
  TECORE_RETURN_NOT_OK(MakeDirs(dir));

  const std::string graph_name = GraphFileName(cp.version);
  const std::string rules_name = RulesFileName(cp.version);
  TECORE_RETURN_NOT_OK(
      AtomicWriteFile(JoinPath(dir, graph_name), cp.graph_text));
  TECORE_RETURN_NOT_OK(
      AtomicWriteFile(JoinPath(dir, rules_name), cp.rules_text));

  // Data is durable but the manifest still points at the previous
  // checkpoint — a crash here must recover the *old* state cleanly.
  MaybeCrash("checkpoint:before_manifest");

  util::Json manifest = util::Json::Object();
  manifest.Set("format", util::Json::Int(kManifestFormat));
  manifest.Set("version", util::Json::Int(static_cast<int64_t>(cp.version)));
  manifest.Set("has_graph", util::Json::Bool(cp.has_graph));
  manifest.Set("graph", FileEntry(graph_name, cp.graph_text));
  manifest.Set("rules", FileEntry(rules_name, cp.rules_text));
  TECORE_RETURN_NOT_OK(
      AtomicWriteFile(JoinPath(dir, kManifestName), manifest.Dump()));

  // Sweep data files from superseded (or crashed, never-published)
  // checkpoints. Best effort: a leftover file is wasted space, not a
  // correctness problem, and must not fail the write that just succeeded.
  auto entries = ListDir(dir);
  if (entries.ok()) {
    for (const std::string& name : *entries) {
      const bool is_data = name.rfind("graph-", 0) == 0 ||
                           name.rfind("rules-", 0) == 0;
      if (is_data && name != graph_name && name != rules_name) {
        RemoveFile(JoinPath(dir, name));
      }
    }
  }
  return Status::OK();
}

Result<Checkpoint> LoadCheckpoint(const std::string& dir) {
  const std::string manifest_path = JoinPath(dir, kManifestName);
  if (!PathExists(manifest_path)) {
    return Status::NotFound(
        StringPrintf("no checkpoint manifest in %s", dir.c_str()));
  }
  TECORE_ASSIGN_OR_RETURN(manifest_text, ReadFile(manifest_path));
  auto parsed = util::Json::Parse(manifest_text);
  if (!parsed.ok()) {
    return Status::IoError(StringPrintf("MANIFEST in %s is not valid JSON: %s",
                                        dir.c_str(),
                                        parsed.status().message().c_str()));
  }
  const util::Json& manifest = *parsed;
  const int64_t format = manifest.GetInt("format", -1);
  if (format != kManifestFormat) {
    return Status::IoError(StringPrintf(
        "MANIFEST in %s has unsupported format %lld", dir.c_str(),
        static_cast<long long>(format)));
  }
  Checkpoint cp;
  cp.version = static_cast<uint64_t>(manifest.GetInt("version", 0));
  cp.has_graph = manifest.GetBool("has_graph", true);
  TECORE_ASSIGN_OR_RETURN(graph_text,
                          LoadVerifiedFile(dir, manifest, "graph"));
  TECORE_ASSIGN_OR_RETURN(rules_text,
                          LoadVerifiedFile(dir, manifest, "rules"));
  cp.graph_text = std::move(graph_text);
  cp.rules_text = std::move(rules_text);
  return cp;
}

}  // namespace storage
}  // namespace tecore
