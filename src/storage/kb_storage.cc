#include "storage/kb_storage.h"

#include <algorithm>

#include "obs/metrics.h"
#include "storage/fault.h"
#include "storage/fs.h"
#include "util/string_util.h"

namespace tecore {
namespace storage {

namespace {
constexpr char kWalName[] = "wal.log";
}  // namespace

Result<std::shared_ptr<KbStorage>> KbStorage::Open(
    const std::string& dir, const StorageOptions& options) {
  TECORE_RETURN_NOT_OK(MakeDirs(dir));
  std::shared_ptr<KbStorage> storage(new KbStorage(dir, options));

  // The object is not yet shared, but recovery writes guarded fields, so
  // take its locks — the analysis does not special-case construction.
  util::MutexLock io_lock(storage->io_mutex_);

  auto cp = LoadCheckpoint(dir);
  if (cp.ok()) {
    storage->checkpoint_ = std::move(cp).value();
    storage->has_checkpoint_ = true;
  } else if (cp.status().code() != StatusCode::kNotFound) {
    // A manifest exists but its data is unreadable or corrupt. Refusing to
    // open beats silently booting an empty KB over acknowledged data.
    return cp.status();
  }

  TECORE_RETURN_NOT_OK(storage->wal_.Open(JoinPath(dir, kWalName)));
  const WalScan& scan = storage->wal_.scan();
  storage->torn_tail_ = scan.torn_tail;
  {
    // Every successful Open is a boot-time recovery: checkpoint loaded
    // (when present) and WAL tail scanned.
    static const auto recoveries = obs::Registry::Default()->GetCounter(
        "tecore_storage_recoveries_total");
    recoveries->Inc();
    if (scan.torn_tail) {
      static const auto torn = obs::Registry::Default()->GetCounter(
          "tecore_wal_torn_tails_total");
      torn->Inc();
    }
  }
  storage->wal_records_ = 0;
  {
    util::MutexLock tail_lock(storage->edit_tail_mutex_);
    storage->edit_floor_ = storage->checkpoint_.version;
  }
  for (const WalRecord& record : scan.records) {
    ++storage->wal_records_;
    // Records at or below the checkpoint version are leftovers from a
    // crash between manifest publish and WAL reset — already captured.
    if (record.version <= storage->checkpoint_.version) continue;
    if (record.type == WalRecordType::kEditBatch) {
      storage->RememberEdit(record.version, record.payload);
    }
    storage->tail_.push_back(record);
  }
  return storage;
}

Status KbStorage::Destroy(const std::string& dir) {
  return RemoveDirRecursive(dir);
}

Status KbStorage::Append(const WalRecord& record) {
  util::MutexLock lock(io_mutex_);
  TECORE_RETURN_NOT_OK(
      wal_.Append(record, options_.fsync == FsyncPolicy::kAlways));
  ++wal_records_;
  if (record.type == WalRecordType::kEditBatch) {
    RememberEdit(record.version, record.payload);
  }
  return Status::OK();
}

bool KbStorage::ShouldCheckpoint() const {
  util::MutexLock lock(io_mutex_);
  return wal_.bytes() >= options_.checkpoint_wal_bytes ||
         wal_records_ >= options_.checkpoint_wal_records;
}

Status KbStorage::WriteCheckpoint(const Checkpoint& cp) {
  util::MutexLock lock(io_mutex_);
  TECORE_RETURN_NOT_OK(storage::WriteCheckpoint(dir_, cp));
  // The manifest is durable; these records are now redundant. A crash
  // before the reset is harmless — recovery skips records whose version
  // is covered by the checkpoint.
  MaybeCrash("checkpoint:before_wal_reset");
  TECORE_RETURN_NOT_OK(wal_.Reset());
  wal_records_ = 0;
  checkpoint_ = cp;
  has_checkpoint_ = true;
  tail_.clear();
  static const auto checkpoints =
      obs::Registry::Default()->GetCounter("tecore_checkpoints_total");
  checkpoints->Inc();
  return Status::OK();
}

Status KbStorage::Flush() {
  util::MutexLock lock(io_mutex_);
  return wal_.Sync();
}

std::vector<std::pair<uint64_t, std::string>> KbStorage::EditsSince(
    uint64_t after_version, bool* complete) const {
  util::MutexLock lock(edit_tail_mutex_);
  // Complete only when every version since `after_version` that carried
  // edits is still in the tail — i.e. the caller is not asking for history
  // below the floor.
  *complete = after_version >= edit_floor_;
  std::vector<std::pair<uint64_t, std::string>> out;
  for (const auto& entry : edit_tail_) {
    if (entry.first > after_version) out.push_back(entry);
  }
  return out;
}

void KbStorage::ResetEditTail(uint64_t version) {
  util::MutexLock lock(edit_tail_mutex_);
  edit_tail_.clear();
  edit_floor_ = std::max(edit_floor_, version);
}

void KbStorage::RememberEdit(uint64_t version, const std::string& script) {
  util::MutexLock lock(edit_tail_mutex_);
  edit_tail_.emplace_back(version, script);
  while (edit_tail_.size() > options_.edit_tail_limit) {
    edit_floor_ = std::max(edit_floor_, edit_tail_.front().first);
    edit_tail_.erase(edit_tail_.begin());
  }
}

}  // namespace storage
}  // namespace tecore
