#ifndef TECORE_STORAGE_KB_STORAGE_H_
#define TECORE_STORAGE_KB_STORAGE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "storage/checkpoint.h"
#include "storage/wal.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace tecore {
namespace storage {

/// \brief When WAL appends reach the disk platter.
enum class FsyncPolicy {
  /// fsync before every acknowledgement — the durability guarantee the
  /// docs promise. Default.
  kAlways,
  /// Never fsync on append (OS page cache decides). Survives process
  /// crashes but not power loss; for benchmarks and bulk loads.
  kNever,
};

/// \brief Tunables for one KB's durability.
struct StorageOptions {
  FsyncPolicy fsync = FsyncPolicy::kAlways;
  /// Checkpoint when the WAL exceeds this many bytes…
  uint64_t checkpoint_wal_bytes = 4ull << 20;
  /// …or this many records, whichever comes first.
  uint64_t checkpoint_wal_records = 4096;
  /// How many recent edit scripts to keep in memory for SSE
  /// `Last-Event-ID` resume. Older resumes fall back to a snapshot.
  size_t edit_tail_limit = 1024;
};

/// \brief Durable storage for one knowledge base: checkpoint + WAL.
///
/// Layout under the KB directory (`<data_dir>/kbs/<name>/`):
///
///     MANIFEST           checkpoint manifest (JSON, atomically replaced)
///     graph-<v>.tq       checkpointed live graph, canonical `.tq` text
///     rules-<v>.tcr      checkpointed rule set
///     wal.log            edit batches / rule sets / version marks since
///
/// `Open` performs recovery: load + verify the checkpoint (absent on a
/// fresh KB), scan the WAL (truncating a torn tail), and expose the
/// checkpoint plus the ordered record tail with versions newer than the
/// checkpoint for the engine to replay.
///
/// Locking: the WAL handle and checkpoint state are guarded by
/// `io_mutex_` — historically the engine's writer lock was trusted to
/// serialize them, now the compiler checks it. `EditsSince` (the SSE
/// resume read path) is guarded by its own `edit_tail_mutex_` so
/// subscriber threads never contend with the writer's I/O. Lock order:
/// `io_mutex_` before `edit_tail_mutex_`, never the reverse.
class KbStorage {
 public:
  /// \brief Open `dir` (creating it for a fresh KB) and recover.
  static Result<std::shared_ptr<KbStorage>> Open(const std::string& dir,
                                                 const StorageOptions& options);

  /// \brief Remove a KB's directory tree (after the engine retired it).
  static Status Destroy(const std::string& dir);

  const std::string& dir() const { return dir_; }
  const StorageOptions& options() const { return options_; }
  /// \brief True when the directory held a checkpoint at open time (or one
  /// has been written since).
  bool has_checkpoint() const TECORE_EXCLUDES(io_mutex_) {
    util::MutexLock lock(io_mutex_);
    return has_checkpoint_;
  }
  /// \brief Recovered checkpoint (version 0 + empty texts on a fresh KB).
  /// Returned by value: the internal copy may be replaced by a later
  /// WriteCheckpoint, and callers (engine attach) read it exactly once.
  Checkpoint checkpoint() const TECORE_EXCLUDES(io_mutex_) {
    util::MutexLock lock(io_mutex_);
    return checkpoint_;
  }
  /// \brief WAL records newer than the checkpoint, in log order.
  /// Returned by value for the same reason as checkpoint().
  std::vector<WalRecord> tail() const TECORE_EXCLUDES(io_mutex_) {
    util::MutexLock lock(io_mutex_);
    return tail_;
  }
  /// \brief True when Open had to truncate a torn WAL tail.
  bool recovered_torn_tail() const TECORE_EXCLUDES(io_mutex_) {
    util::MutexLock lock(io_mutex_);
    return torn_tail_;
  }

  /// \brief Append one record, fsyncing per policy. On OK the record is
  /// durable (under kAlways) and the caller may acknowledge; on error
  /// nothing may be published.
  Status Append(const WalRecord& record) TECORE_EXCLUDES(io_mutex_);

  /// \brief True when the WAL has grown past the checkpoint policy.
  bool ShouldCheckpoint() const TECORE_EXCLUDES(io_mutex_);

  /// \brief Write a new checkpoint and reset the WAL it supersedes.
  /// Crash between manifest publish and WAL reset is safe: recovery skips
  /// WAL records with version <= checkpoint version.
  Status WriteCheckpoint(const Checkpoint& cp) TECORE_EXCLUDES(io_mutex_);

  /// \brief fsync the WAL (shutdown path under fsync=never).
  Status Flush() TECORE_EXCLUDES(io_mutex_);

  /// \brief Edit scripts with version > `after_version`, oldest first,
  /// for SSE resume. `*complete` is set to false when `after_version`
  /// predates the in-memory tail (the caller should resync via snapshot).
  std::vector<std::pair<uint64_t, std::string>> EditsSince(
      uint64_t after_version, bool* complete) const
      TECORE_EXCLUDES(edit_tail_mutex_);

  /// \brief Drop the resume tail and raise its floor to `version` — called
  /// when the graph is replaced wholesale (load/set), after which replaying
  /// older edit scripts would describe a graph that no longer exists.
  void ResetEditTail(uint64_t version) TECORE_EXCLUDES(edit_tail_mutex_);

 private:
  KbStorage(std::string dir, StorageOptions options)
      : dir_(std::move(dir)), options_(options) {}

  void RememberEdit(uint64_t version, const std::string& script)
      TECORE_EXCLUDES(edit_tail_mutex_);

  std::string dir_;
  StorageOptions options_;

  /// Guards the checkpoint/WAL state below. The engine's writer lock
  /// already serializes Append/WriteCheckpoint, but the annotation makes
  /// "WAL poison state is never read unguarded" a compile-time fact
  /// instead of a calling convention.
  mutable util::Mutex io_mutex_;
  bool has_checkpoint_ TECORE_GUARDED_BY(io_mutex_) = false;
  Checkpoint checkpoint_ TECORE_GUARDED_BY(io_mutex_);
  std::vector<WalRecord> tail_ TECORE_GUARDED_BY(io_mutex_);
  bool torn_tail_ TECORE_GUARDED_BY(io_mutex_) = false;
  Wal wal_ TECORE_GUARDED_BY(io_mutex_);
  /// Records in the WAL since last reset.
  uint64_t wal_records_ TECORE_GUARDED_BY(io_mutex_) = 0;

  /// SSE resume tail: recent (version, edit script) pairs. `edit_floor_`
  /// is the highest version known to be *before* the tail's first entry —
  /// resume below it is incomplete.
  mutable util::Mutex edit_tail_mutex_;
  std::vector<std::pair<uint64_t, std::string>> edit_tail_
      TECORE_GUARDED_BY(edit_tail_mutex_);
  uint64_t edit_floor_ TECORE_GUARDED_BY(edit_tail_mutex_) = 0;
};

}  // namespace storage
}  // namespace tecore

#endif  // TECORE_STORAGE_KB_STORAGE_H_
