#ifndef TECORE_STORAGE_FS_H_
#define TECORE_STORAGE_FS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace tecore {
namespace storage {

/// \brief POSIX filesystem helpers for the durability layer.
///
/// Everything here is crash-safety-aware: writes that must survive a
/// kill -9 go through `AtomicWriteFile` (tmp + fsync + rename + directory
/// fsync), and callers that append in place (the WAL) combine plain
/// appends with explicit `FsyncFd`. All paths are '/'-joined strings; no
/// path escaping is attempted beyond what the KB-name grammar already
/// guarantees (`[A-Za-z0-9][A-Za-z0-9_-]*`).

/// \brief True when `path` exists (any file type).
bool PathExists(const std::string& path);

/// \brief True when `path` exists and is a directory.
bool IsDirectory(const std::string& path);

/// \brief Size of a regular file; IoError when absent/unreadable.
Result<uint64_t> FileSize(const std::string& path);

/// \brief mkdir -p. OK when the directory already exists.
Status MakeDirs(const std::string& path);

/// \brief Names of the entries directly under `path` (no "."/".."),
/// sorted. IoError when `path` is not a listable directory.
Result<std::vector<std::string>> ListDir(const std::string& path);

/// \brief Unlink one file. OK when already absent.
Status RemoveFile(const std::string& path);

/// \brief rm -rf: remove `path` and everything under it. OK when absent.
Status RemoveDirRecursive(const std::string& path);

/// \brief fsync an open descriptor (fatal-error aware: EIO is reported,
/// EINVAL on fsync-less filesystems is tolerated).
Status FsyncFd(int fd, const std::string& what);

/// \brief Open + fsync + close a directory so a rename/unlink inside it
/// is durable.
Status FsyncDir(const std::string& path);

/// \brief Durably replace `path` with `contents`: write `path.tmp`,
/// fsync it, rename over `path`, fsync the parent directory. The target
/// is either the old or the new contents after any crash, never a mix.
Status AtomicWriteFile(const std::string& path, std::string_view contents);

/// \brief Read a whole file (IoError when unreadable).
Result<std::string> ReadFile(const std::string& path);

/// \brief Parent directory of `path` ("." when it has no '/').
std::string DirName(const std::string& path);

/// \brief Join two path segments with '/'.
std::string JoinPath(const std::string& a, const std::string& b);

}  // namespace storage
}  // namespace tecore

#endif  // TECORE_STORAGE_FS_H_
