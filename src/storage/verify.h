#ifndef TECORE_STORAGE_VERIFY_H_
#define TECORE_STORAGE_VERIFY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace tecore {
namespace storage {

/// \brief Outcome of a read-only integrity check of one KB directory
/// (`tecore-cli kb verify`). Unlike recovery, verification never repairs:
/// a torn WAL tail is reported, not truncated.
struct KbVerifyReport {
  std::string dir;
  bool has_checkpoint = false;
  uint64_t checkpoint_version = 0;
  uint64_t wal_records = 0;      ///< intact records in the log
  uint64_t wal_valid_bytes = 0;  ///< CRC-covered prefix length
  uint64_t wal_file_bytes = 0;   ///< physical log size
  bool wal_torn_tail = false;    ///< trailing garbage recovery would drop
  /// Highest version recovery would reconstruct (checkpoint version when
  /// the log is empty; 0 for a fresh KB).
  uint64_t recoverable_version = 0;
  /// Human-readable integrity failures; empty means the KB is clean
  /// (a torn tail alone is recoverable-but-noted, not a failure).
  std::vector<std::string> problems;

  bool ok() const { return problems.empty(); }
};

/// \brief Verify one KB directory without modifying it. Only fails
/// (IoError) when the directory itself is unreadable; integrity findings
/// land in the report.
Result<KbVerifyReport> VerifyKbDir(const std::string& dir);

}  // namespace storage
}  // namespace tecore

#endif  // TECORE_STORAGE_VERIFY_H_
