#ifndef TECORE_STORAGE_CRC32_H_
#define TECORE_STORAGE_CRC32_H_

#include <cstdint>
#include <string_view>

namespace tecore {
namespace storage {

/// \brief CRC-32 (IEEE 802.3, polynomial 0xEDB88320, the zlib `crc32`),
/// table-driven, self-contained. Guards every WAL record frame and every
/// checkpoint data file against torn writes and bit rot; the checksum is
/// part of the on-disk format (docs/durability.md), so the polynomial
/// must never change.
uint32_t Crc32(std::string_view data);

/// \brief Streaming form: extend `crc` (from a previous call, or 0) with
/// `data`.
uint32_t Crc32Update(uint32_t crc, std::string_view data);

}  // namespace storage
}  // namespace tecore

#endif  // TECORE_STORAGE_CRC32_H_
