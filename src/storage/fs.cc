#include "storage/fs.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "util/file.h"
#include "util/string_util.h"

namespace tecore {
namespace storage {

namespace {

Status Errno(const char* op, const std::string& path) {
  return Status::IoError(
      StringPrintf("%s %s: %s", op, path.c_str(), std::strerror(errno)));
}

}  // namespace

bool PathExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

bool IsDirectory(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0 && S_ISDIR(st.st_mode);
}

Result<uint64_t> FileSize(const std::string& path) {
  struct stat st;
  if (::stat(path.c_str(), &st) != 0) return Errno("stat", path);
  return static_cast<uint64_t>(st.st_size);
}

Status MakeDirs(const std::string& path) {
  if (path.empty()) return Status::InvalidArgument("empty directory path");
  std::string partial;
  size_t start = 0;
  while (start <= path.size()) {
    size_t slash = path.find('/', start);
    if (slash == std::string::npos) slash = path.size();
    partial.assign(path, 0, slash);
    start = slash + 1;
    if (partial.empty()) continue;  // leading '/'
    if (::mkdir(partial.c_str(), 0755) != 0 && errno != EEXIST) {
      return Errno("mkdir", partial);
    }
  }
  if (!IsDirectory(path)) {
    return Status::IoError("not a directory: " + path);
  }
  return Status::OK();
}

Result<std::vector<std::string>> ListDir(const std::string& path) {
  DIR* dir = ::opendir(path.c_str());
  if (dir == nullptr) return Errno("opendir", path);
  std::vector<std::string> names;
  while (dirent* entry = ::readdir(dir)) {
    const std::string name = entry->d_name;
    if (name == "." || name == "..") continue;
    names.push_back(name);
  }
  ::closedir(dir);
  std::sort(names.begin(), names.end());
  return names;
}

Status RemoveFile(const std::string& path) {
  if (::unlink(path.c_str()) != 0 && errno != ENOENT) {
    return Errno("unlink", path);
  }
  return Status::OK();
}

Status RemoveDirRecursive(const std::string& path) {
  if (!PathExists(path)) return Status::OK();
  if (!IsDirectory(path)) return RemoveFile(path);
  auto entries = ListDir(path);
  if (!entries.ok()) return entries.status();
  for (const std::string& name : *entries) {
    TECORE_RETURN_NOT_OK(RemoveDirRecursive(JoinPath(path, name)));
  }
  if (::rmdir(path.c_str()) != 0 && errno != ENOENT) {
    return Errno("rmdir", path);
  }
  return Status::OK();
}

Status FsyncFd(int fd, const std::string& what) {
  if (::fsync(fd) != 0) {
    // Some filesystems (and /dev/null-style sinks) reject fsync with
    // EINVAL; that is "no durability to offer", not data loss.
    if (errno == EINVAL) return Status::OK();
    return Errno("fsync", what);
  }
  return Status::OK();
}

Status FsyncDir(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return Errno("open dir", path);
  Status st = FsyncFd(fd, path);
  ::close(fd);
  return st;
}

Status AtomicWriteFile(const std::string& path, std::string_view contents) {
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return Errno("open", tmp);
  size_t written = 0;
  while (written < contents.size()) {
    const ssize_t n =
        ::write(fd, contents.data() + written, contents.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      Status st = Errno("write", tmp);
      ::close(fd);
      ::unlink(tmp.c_str());
      return st;
    }
    written += static_cast<size_t>(n);
  }
  Status synced = FsyncFd(fd, tmp);
  ::close(fd);
  if (!synced.ok()) {
    ::unlink(tmp.c_str());
    return synced;
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    Status st = Errno("rename", tmp);
    ::unlink(tmp.c_str());
    return st;
  }
  return FsyncDir(DirName(path));
}

Result<std::string> ReadFile(const std::string& path) {
  return util::ReadFileToString(path);
}

std::string DirName(const std::string& path) {
  const size_t slash = path.rfind('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

std::string JoinPath(const std::string& a, const std::string& b) {
  if (a.empty()) return b;
  if (!a.empty() && a.back() == '/') return a + b;
  return a + "/" + b;
}

}  // namespace storage
}  // namespace tecore
