#include "storage/fault.h"

#include <csignal>
#include <cstdlib>

namespace tecore {
namespace storage {

namespace {

std::string& ArmedCrashPoint() {
  static std::string point;
  return point;
}

std::string& ArmedIoPoint() {
  static std::string point;
  return point;
}

int& IoFailuresLeft() {
  static int count = 0;
  return count;
}

/// TECORE_CRASH_POINT sampled exactly once. CrashPointArmed sits on the
/// hot write path (every WAL append consults it), so it must not pay a
/// getenv per call — and a long-lived process must not become armable by
/// an environment mutation after startup.
const std::string& EnvCrashPoint() {
  static const std::string point = [] {
    const char* env = std::getenv("TECORE_CRASH_POINT");
    return env == nullptr ? std::string() : std::string(env);
  }();
  return point;
}

}  // namespace

void ArmCrashPoint(std::string point) {
  ArmedCrashPoint() = std::move(point);
}

bool CrashPointArmed(std::string_view point) {
  const std::string& armed = ArmedCrashPoint();
  if (!armed.empty() && armed == point) return true;
  // Subprocess-style tests (and the smoke script) arm via environment,
  // sampled once at first use.
  const std::string& env = EnvCrashPoint();
  return !env.empty() && point == env;
}

void MaybeCrash(std::string_view point) {
  if (CrashPointArmed(point)) {
    // SIGKILL, not exit(): no atexit handlers, no stream flushes, no
    // destructors — indistinguishable from `kill -9` at this instruction.
    ::raise(SIGKILL);
  }
}

void InjectIoFailures(std::string point, int count) {
  ArmedIoPoint() = std::move(point);
  IoFailuresLeft() = count;
}

bool ShouldFailIo(std::string_view point) {
  if (IoFailuresLeft() <= 0 || ArmedIoPoint() != point) return false;
  --IoFailuresLeft();
  return true;
}

}  // namespace storage
}  // namespace tecore
