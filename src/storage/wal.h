#ifndef TECORE_STORAGE_WAL_H_
#define TECORE_STORAGE_WAL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace tecore {
namespace storage {

/// \brief What one write-ahead-log record describes.
enum class WalRecordType : uint8_t {
  /// A `.tq` edit script (`+`/`-` fact lines) — one acknowledged
  /// `ApplyEdits` batch, bit-exact (PR 3's round-trip contract is what
  /// makes the text form a valid WAL payload).
  kEditBatch = 1,
  /// Full replacement rule set in the rule-language concrete syntax
  /// (rule writes are rare and rule sets are small, so the log stores
  /// state, not deltas — replay just takes the latest).
  kRulesSet = 2,
  /// A publish that changed no durable content (a fresh Solve). Logged so
  /// the version counter survives a restart and snapshot versions are
  /// never reused for different content.
  kVersionMark = 3,
};

/// \brief One decoded WAL record.
struct WalRecord {
  WalRecordType type = WalRecordType::kVersionMark;
  /// The snapshot version this record's publish produced.
  uint64_t version = 0;
  std::string payload;
};

/// \brief Outcome of scanning a log file.
struct WalScan {
  std::vector<WalRecord> records;  ///< every intact record, in log order
  uint64_t valid_bytes = 0;        ///< prefix length covered by `records`
  uint64_t file_bytes = 0;         ///< physical file size at scan time
  /// True when trailing bytes after `valid_bytes` had to be discarded
  /// (short frame, impossible length, or CRC mismatch) — the torn-tail
  /// signature of a crash mid-append.
  bool torn_tail = false;
};

/// \brief Append-only write-ahead log with length + CRC32 record framing.
///
/// On-disk format (little-endian, docs/durability.md §WAL):
///
///     record := u32 frame_len   // bytes after the crc field: 1 + 8 + |payload|
///               u32 crc32      // over (type, version, payload) bytes
///               u8  type       // WalRecordType
///               u64 version
///               payload bytes
///
/// Torn-tail protocol: `Open` scans the file and truncates it physically
/// at the first record that is short, oversized or fails its checksum.
/// Everything before that point is intact by CRC; everything after it was
/// never acknowledged (records are fsynced before the write publishes),
/// so dropping it is exactly "recover the acknowledged prefix".
///
/// Not internally synchronized. The only production instance is
/// `KbStorage::wal_`, declared `TECORE_GUARDED_BY(io_mutex_)` — every
/// access to this object (including poison-state reads through
/// `poisoned()`) is therefore checked by Clang Thread Safety Analysis at
/// the owner, which is why this class carries no locks of its own. Tests
/// and the verify tool use standalone instances single-threaded.
class Wal {
 public:
  Wal() = default;
  ~Wal();
  Wal(const Wal&) = delete;
  Wal& operator=(const Wal&) = delete;

  /// \brief Open (creating if absent) and scan `path`, truncating a torn
  /// tail. The scan result (including every intact record, for replay) is
  /// available via `scan()` afterwards.
  Status Open(const std::string& path);

  /// \brief Append one record. When `sync` is set the record is fsynced
  /// before returning — the caller may acknowledge the write after this
  /// returns OK, and only then.
  ///
  /// A failed write() mid-frame is rolled back (ftruncate to the last
  /// intact prefix) so the file never holds a torn frame that later
  /// successful appends would land *behind* — recovery truncates at the
  /// first torn frame, so such records would be acknowledged yet
  /// unrecoverable. When the rollback itself fails, or after any fsync
  /// failure (post-EIO fsync can report success for pages that were
  /// dropped), the log is poisoned: every further Append/Sync fails until
  /// the WAL is reopened, rather than acknowledging writes whose
  /// durability can no longer be trusted.
  Status Append(const WalRecord& record, bool sync);

  /// \brief fsync the log fd (used by flush paths and fsync=never mode
  /// shutdown). A failure poisons the log (see Append).
  Status Sync();

  /// \brief Truncate the log to empty (after a checkpoint made its
  /// records redundant) and fsync the truncation.
  Status Reset();

  /// \brief Close the fd (idempotent; destructor calls it).
  void Close();

  const WalScan& scan() const { return scan_; }
  uint64_t bytes() const { return bytes_; }
  const std::string& path() const { return path_; }
  bool poisoned() const { return poisoned_; }

  /// \brief Encode one record in the on-disk frame format (exposed for
  /// tests and the verify tool).
  static std::string EncodeRecord(const WalRecord& record);

  /// \brief Decode-only scan of a log file (the verify tool's read path;
  /// never truncates).
  static Result<WalScan> ScanFile(const std::string& path);

 private:
  /// Mark the log unusable after a failure that may have left torn bytes
  /// in place or lied about durability; records the first such error.
  Status Poison(Status status);

  std::string path_;
  int fd_ = -1;
  uint64_t bytes_ = 0;  ///< current physical size (valid prefix)
  bool poisoned_ = false;
  Status poison_status_ = Status::OK();
  WalScan scan_;
};

}  // namespace storage
}  // namespace tecore

#endif  // TECORE_STORAGE_WAL_H_
