#ifndef TECORE_STORAGE_FAULT_H_
#define TECORE_STORAGE_FAULT_H_

#include <string>
#include <string_view>

namespace tecore {
namespace storage {

/// \brief Fault injection for the durability layer — the hooks that make
/// crash-safe recovery *testable* instead of assumed.
///
/// Two orthogonal mechanisms, both no-ops in production:
///
///  * **Crash points.** The storage code calls `MaybeCrash("wal:after_append")`
///    at every point where a kill -9 would be interesting. When the named
///    point is armed (via `ArmCrashPoint` in-process, typically in a forked
///    child, or via the `TECORE_CRASH_POINT` environment variable for
///    subprocess tests — sampled once at first use, so arming is a
///    launch-time decision and the hot write path never pays a getenv),
///    the process dies *immediately* with SIGKILL — no destructors, no
///    flushes, exactly like a power cut.
///
///  * **I/O errors.** `ShouldFailIo("wal:append")` returns true for the
///    next `n` calls after `InjectIoFailures(point, n)`, letting tests
///    assert that a failed append is reported as IoError and publishes
///    nothing.
///
/// Points currently wired (see docs/durability.md §Fault injection):
///   wal:before_append   — before any bytes of the record are written
///   wal:mid_append      — after a deliberately short prefix of the record
///   wal:after_append    — record bytes written, not yet fsynced
///   wal:after_sync      — record durable, edit not yet applied/published
///   engine:before_publish — state mutated, snapshot not yet swapped
///   checkpoint:before_manifest — data files written, manifest not renamed
///   checkpoint:before_wal_reset — manifest durable, WAL not yet reset
/// I/O failure points: "wal:append", "wal:sync", "checkpoint:write".
///
/// All state is process-global and not thread-safe by design: tests arm a
/// point, run one single-threaded storage operation, and disarm.

/// \brief Arm `point` so the next `MaybeCrash(point)` SIGKILLs the
/// process. Empty string disarms.
void ArmCrashPoint(std::string point);

/// \brief Die via SIGKILL when `point` is armed (programmatically or via
/// the TECORE_CRASH_POINT environment variable).
void MaybeCrash(std::string_view point);

/// \brief True when `point` is currently armed. Lets code pick a
/// fault-reachable path (e.g. the WAL's deliberately short write) only
/// while the matching test is running.
bool CrashPointArmed(std::string_view point);

/// \brief Make the next `count` calls of `ShouldFailIo(point)` return
/// true. count = 0 disarms.
void InjectIoFailures(std::string point, int count);

/// \brief Consume one armed I/O failure for `point`.
bool ShouldFailIo(std::string_view point);

}  // namespace storage
}  // namespace tecore

#endif  // TECORE_STORAGE_FAULT_H_
