#include "storage/wal.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "obs/metrics.h"
#include "storage/crc32.h"
#include "storage/fault.h"
#include "storage/fs.h"
#include "util/string_util.h"

namespace tecore {
namespace storage {

namespace {

/// Frame header: u32 frame_len + u32 crc.
constexpr size_t kFrameHeaderBytes = 8;
/// Fixed part after the header: u8 type + u64 version.
constexpr size_t kRecordFixedBytes = 9;
/// Upper bound on one frame — anything larger is treated as corruption,
/// not as a real record (a torn length field must not make the scanner
/// wait for gigabytes that never existed).
constexpr uint64_t kMaxFrameBytes = 1ull << 30;

void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

uint32_t GetU32(const char* p) {
  uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | static_cast<unsigned char>(p[i]);
  return v;
}

uint64_t GetU64(const char* p) {
  uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | static_cast<unsigned char>(p[i]);
  return v;
}

bool ValidType(uint8_t type) {
  return type == static_cast<uint8_t>(WalRecordType::kEditBatch) ||
         type == static_cast<uint8_t>(WalRecordType::kRulesSet) ||
         type == static_cast<uint8_t>(WalRecordType::kVersionMark);
}

/// Decode records from `data`; shared by Open (truncating) and ScanFile
/// (read-only verify).
WalScan ScanBytes(const std::string& data) {
  WalScan scan;
  scan.file_bytes = data.size();
  size_t pos = 0;
  while (pos < data.size()) {
    if (data.size() - pos < kFrameHeaderBytes) break;  // torn header
    const uint64_t frame_len = GetU32(data.data() + pos);
    const uint32_t crc = GetU32(data.data() + pos + 4);
    if (frame_len < kRecordFixedBytes || frame_len > kMaxFrameBytes) break;
    if (data.size() - pos - kFrameHeaderBytes < frame_len) break;  // torn body
    const std::string_view body(data.data() + pos + kFrameHeaderBytes,
                                frame_len);
    if (Crc32(body) != crc) break;  // flipped bits or recycled space
    const uint8_t type = static_cast<uint8_t>(body[0]);
    if (!ValidType(type)) break;
    WalRecord record;
    record.type = static_cast<WalRecordType>(type);
    record.version = GetU64(body.data() + 1);
    record.payload.assign(body.substr(kRecordFixedBytes));
    scan.records.push_back(std::move(record));
    pos += kFrameHeaderBytes + frame_len;
  }
  scan.valid_bytes = pos;
  scan.torn_tail = pos != data.size();
  return scan;
}

}  // namespace

Wal::~Wal() { Close(); }

void Wal::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

std::string Wal::EncodeRecord(const WalRecord& record) {
  std::string body;
  body.reserve(kRecordFixedBytes + record.payload.size());
  body.push_back(static_cast<char>(record.type));
  PutU64(&body, record.version);
  body += record.payload;

  std::string frame;
  frame.reserve(kFrameHeaderBytes + body.size());
  PutU32(&frame, static_cast<uint32_t>(body.size()));
  PutU32(&frame, Crc32(body));
  frame += body;
  return frame;
}

Result<WalScan> Wal::ScanFile(const std::string& path) {
  TECORE_ASSIGN_OR_RETURN(data, ReadFile(path));
  return ScanBytes(data);
}

Status Wal::Poison(Status status) {
  // poisoned_/poison_status_ need no atomics: every production access to
  // this object happens under KbStorage::io_mutex_ (wal_ is GUARDED_BY
  // it), so a reader can never observe poisoned_ set without its status.
  if (!poisoned_) {
    poisoned_ = true;
    poison_status_ = status;
  }
  return status;
}

Status Wal::Open(const std::string& path) {
  Close();
  path_ = path;
  poisoned_ = false;
  poison_status_ = Status::OK();
  scan_ = WalScan();
  std::string data;
  if (PathExists(path)) {
    TECORE_ASSIGN_OR_RETURN(existing, ReadFile(path));
    data = std::move(existing);
  }
  scan_ = ScanBytes(data);

  fd_ = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
  if (fd_ < 0) {
    return Status::IoError(StringPrintf("open wal %s: %s", path.c_str(),
                                        std::strerror(errno)));
  }
  if (scan_.torn_tail) {
    // Torn-tail protocol: physically discard the unacknowledged suffix so
    // appends continue from a clean, CRC-covered prefix.
    if (::ftruncate(fd_, static_cast<off_t>(scan_.valid_bytes)) != 0) {
      return Status::IoError(StringPrintf("truncate wal %s: %s", path.c_str(),
                                          std::strerror(errno)));
    }
    TECORE_RETURN_NOT_OK(FsyncFd(fd_, path));
  }
  if (::lseek(fd_, static_cast<off_t>(scan_.valid_bytes), SEEK_SET) < 0) {
    return Status::IoError(StringPrintf("seek wal %s: %s", path.c_str(),
                                        std::strerror(errno)));
  }
  bytes_ = scan_.valid_bytes;
  return Status::OK();
}

Status Wal::Append(const WalRecord& record, bool sync) {
  if (fd_ < 0) return Status::Internal("wal not open");
  if (poisoned_) return poison_status_;
  if (ShouldFailIo("wal:append")) {
    return Status::IoError("injected wal append failure");
  }
  const std::string frame = EncodeRecord(record);
  MaybeCrash("wal:before_append");
  // When the mid-append crash point is armed, split the frame so the
  // process dies holding a genuinely torn record; production appends are a
  // single write().
  const bool tear = CrashPointArmed("wal:mid_append") && frame.size() > 1;
  size_t written = 0;
  while (written < frame.size()) {
    if (written > 0) MaybeCrash("wal:mid_append");
    size_t want = frame.size() - written;
    if (tear && written == 0) want = frame.size() / 2;
    const ssize_t n = ::write(fd_, frame.data() + written, want);
    if (n < 0) {
      if (errno == EINTR) continue;
      Status status = Status::IoError(StringPrintf(
          "append wal %s: %s", path_.c_str(), std::strerror(errno)));
      // Roll the torn frame back out of the file. Leaving it in place
      // would let later appends land *behind* a frame recovery truncates
      // at — acknowledged, fsynced, and then silently discarded on boot.
      if (::ftruncate(fd_, static_cast<off_t>(bytes_)) != 0 ||
          ::lseek(fd_, static_cast<off_t>(bytes_), SEEK_SET) < 0) {
        return Poison(Status::IoError(StringPrintf(
            "append wal %s: %s; rollback of torn frame failed (%s), log "
            "poisoned",
            path_.c_str(), status.message().c_str(), std::strerror(errno))));
      }
      return status;
    }
    written += static_cast<size_t>(n);
  }
  bytes_ += frame.size();
  {
    static const auto appends =
        obs::Registry::Default()->GetCounter("tecore_wal_appends_total");
    static const auto append_bytes =
        obs::Registry::Default()->GetCounter("tecore_wal_append_bytes_total");
    appends->Inc();
    append_bytes->Inc(frame.size());
  }
  MaybeCrash("wal:after_append");
  if (sync) {
    TECORE_RETURN_NOT_OK(Sync());
    MaybeCrash("wal:after_sync");
  }
  return Status::OK();
}

Status Wal::Sync() {
  if (fd_ < 0) return Status::Internal("wal not open");
  if (poisoned_) return poison_status_;
  if (ShouldFailIo("wal:sync")) {
    return Poison(Status::IoError("injected wal sync failure"));
  }
  Status status = FsyncFd(fd_, path_);
  // After a failed fsync the kernel may drop the dirty pages and report
  // the *next* fsync as clean (the fsyncgate hazard) — a retry succeeding
  // proves nothing, so the log must stop acknowledging writes.
  if (!status.ok()) return Poison(std::move(status));
  static const auto fsyncs =
      obs::Registry::Default()->GetCounter("tecore_wal_fsyncs_total");
  fsyncs->Inc();
  return status;
}

Status Wal::Reset() {
  if (fd_ < 0) return Status::Internal("wal not open");
  if (poisoned_) return poison_status_;
  if (::ftruncate(fd_, 0) != 0 || ::lseek(fd_, 0, SEEK_SET) < 0) {
    return Poison(Status::IoError(StringPrintf(
        "reset wal %s: %s", path_.c_str(), std::strerror(errno))));
  }
  bytes_ = 0;
  Status status = FsyncFd(fd_, path_);
  if (!status.ok()) return Poison(std::move(status));
  return status;
}

}  // namespace storage
}  // namespace tecore
