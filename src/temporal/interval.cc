#include "temporal/interval.h"

#include <cassert>

#include "util/string_util.h"

namespace tecore {
namespace temporal {

Interval::Interval(TimePoint begin, TimePoint end) : begin_(begin), end_(end) {
  assert(begin <= end && "Interval requires begin <= end");
}

Result<Interval> Interval::Make(TimePoint begin, TimePoint end) {
  if (begin > end) {
    return Status::InvalidArgument(
        StringPrintf("interval begin %lld > end %lld",
                     static_cast<long long>(begin),
                     static_cast<long long>(end)));
  }
  if (begin < kMinTime || end > kMaxTime) {
    return Status::OutOfRange("interval endpoints outside the time domain");
  }
  return Interval(begin, end);
}

Result<Interval> Interval::Parse(std::string_view text) {
  std::string_view s = Trim(text);
  if (s.size() < 3 || s.front() != '[' || s.back() != ']') {
    return Status::ParseError("interval must look like [b,e] or [t]: '" +
                              std::string(text) + "'");
  }
  s = s.substr(1, s.size() - 2);
  size_t comma = s.find(',');
  int64_t b = 0, e = 0;
  if (comma == std::string_view::npos) {
    if (!ParseInt64(Trim(s), &b)) {
      return Status::ParseError("bad time point in interval: '" +
                                std::string(text) + "'");
    }
    e = b;
  } else {
    if (!ParseInt64(Trim(s.substr(0, comma)), &b) ||
        !ParseInt64(Trim(s.substr(comma + 1)), &e)) {
      return Status::ParseError("bad time point in interval: '" +
                                std::string(text) + "'");
    }
  }
  return Make(b, e);
}

std::optional<Interval> Interval::Intersect(const Interval& other) const {
  TimePoint b = begin_ > other.begin_ ? begin_ : other.begin_;
  TimePoint e = end_ < other.end_ ? end_ : other.end_;
  if (b > e) return std::nullopt;
  return Interval(b, e);
}

Interval Interval::Hull(const Interval& other) const {
  TimePoint b = begin_ < other.begin_ ? begin_ : other.begin_;
  TimePoint e = end_ > other.end_ ? end_ : other.end_;
  return Interval(b, e);
}

std::string Interval::ToString() const {
  if (begin_ == end_) {
    return StringPrintf("[%lld]", static_cast<long long>(begin_));
  }
  return StringPrintf("[%lld,%lld]", static_cast<long long>(begin_),
                      static_cast<long long>(end_));
}

}  // namespace temporal
}  // namespace tecore
