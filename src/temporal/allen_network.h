#ifndef TECORE_TEMPORAL_ALLEN_NETWORK_H_
#define TECORE_TEMPORAL_ALLEN_NETWORK_H_

#include <cstdint>
#include <string>
#include <vector>

#include "temporal/allen.h"
#include "util/status.h"

namespace tecore {
namespace temporal {

/// \brief Qualitative temporal constraint network over Allen's algebra.
///
/// Nodes are interval variables; the edge (i,j) holds the set of basic
/// relations still possible between them. `Propagate()` runs path
/// consistency (PC-2 style queue algorithm): C(i,j) <- C(i,j) ∩ (C(i,k) ∘
/// C(k,j)). TeCoRe uses this to validate user constraint sets before
/// grounding: a rule set whose Allen conditions are jointly path-inconsistent
/// can never have a model, which the Constraints Editor reports upfront.
class AllenNetwork {
 public:
  /// \brief Create a network with `num_vars` interval variables, all edges
  /// initialized to the full relation set.
  explicit AllenNetwork(int num_vars);

  int num_vars() const { return num_vars_; }

  /// \brief Constrain edge (i,j) to `relations` (and (j,i) to the converse).
  /// Intersects with the existing constraint.
  Status Constrain(int i, int j, AllenSet relations);

  /// \brief Current relation set on edge (i,j).
  AllenSet RelationsBetween(int i, int j) const;

  /// \brief Run path consistency to a fixpoint.
  ///
  /// Returns false if some edge became empty (the network is inconsistent).
  /// Note path consistency is complete for *pointizable* relation sets but
  /// only a sound approximation in general Allen algebra; an inconsistency
  /// report is always correct, a "consistent" answer may be optimistic.
  bool Propagate();

  /// \brief True if no edge is empty (after the last Propagate call).
  bool PossiblyConsistent() const;

  /// \brief Human-readable dump of all non-trivial edges.
  std::string ToString() const;

 private:
  int Index(int i, int j) const { return i * num_vars_ + j; }

  int num_vars_;
  std::vector<AllenSet> edges_;  // row-major num_vars x num_vars
};

}  // namespace temporal
}  // namespace tecore

#endif  // TECORE_TEMPORAL_ALLEN_NETWORK_H_
