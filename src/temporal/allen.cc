#include "temporal/allen.h"

#include <cassert>
#include <cctype>

#include "util/string_util.h"

namespace tecore {
namespace temporal {

namespace {

constexpr std::array<std::string_view, kNumAllenRelations> kNames = {
    "before",      "meets",       "overlaps",      "starts",  "during",
    "finishes",    "equals",      "finished-by",   "contains", "started-by",
    "overlapped-by", "met-by",    "after",
};

}  // namespace

std::string_view AllenRelationName(AllenRelation r) {
  return kNames[static_cast<uint8_t>(r)];
}

Result<AllenRelation> ParseAllenRelation(std::string_view name) {
  // Normalize: lower-case and drop '-'/'_' so both "overlapped-by" and
  // "overlappedBy" parse.
  std::string norm;
  for (char c : name) {
    if (c == '-' || c == '_') continue;
    norm.push_back(
        static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  for (int i = 0; i < kNumAllenRelations; ++i) {
    std::string cand;
    for (char c : kNames[i]) {
      if (c == '-') continue;
      cand.push_back(c);
    }
    if (norm == cand) return static_cast<AllenRelation>(i);
  }
  // Common aliases used in the paper's constraint language.
  if (norm == "overlap") return AllenRelation::kOverlaps;
  if (norm == "equal") return AllenRelation::kEquals;
  if (norm == "contain") return AllenRelation::kContains;
  return Status::ParseError("unknown Allen relation: '" + std::string(name) +
                            "'");
}

AllenRelation Converse(AllenRelation r) {
  // The enum is laid out symmetrically around kEquals (index 6).
  return static_cast<AllenRelation>(kNumAllenRelations - 1 -
                                    static_cast<uint8_t>(r));
}

AllenRelation RelationBetween(const Interval& a, const Interval& b) {
  // Classic endpoint case analysis on the half-open view [s, e).
  const TimePoint as = a.begin(), ae = a.end_exclusive();
  const TimePoint bs = b.begin(), be = b.end_exclusive();
  if (ae < bs) return AllenRelation::kBefore;
  if (ae == bs) return AllenRelation::kMeets;
  if (bs < as) {
    // Mirror case: compute on swapped operands and take the converse.
    return Converse(RelationBetween(b, a));
  }
  // Here as <= bs and ae > bs (they share a point), with as <= bs.
  if (as == bs) {
    if (ae == be) return AllenRelation::kEquals;
    return ae < be ? AllenRelation::kStarts : AllenRelation::kStartedBy;
  }
  // as < bs and overlap exists.
  if (ae < be) return AllenRelation::kOverlaps;
  if (ae == be) return AllenRelation::kFinishedBy;
  return AllenRelation::kContains;
}

AllenSet AllenSet::Intersecting() {
  AllenSet s = All();
  return AllenSet(static_cast<uint16_t>(s.bits() & ~Disjoint().bits()));
}

AllenSet AllenSet::Disjoint() {
  AllenSet s;
  s.Add(AllenRelation::kBefore)
      .Add(AllenRelation::kAfter)
      .Add(AllenRelation::kMeets)
      .Add(AllenRelation::kMetBy);
  return s;
}

AllenSet AllenSet::ConverseSet() const {
  AllenSet out;
  for (int i = 0; i < kNumAllenRelations; ++i) {
    if ((bits_ >> i) & 1u) out.Add(Converse(static_cast<AllenRelation>(i)));
  }
  return out;
}

std::vector<AllenRelation> AllenSet::Members() const {
  std::vector<AllenRelation> out;
  for (int i = 0; i < kNumAllenRelations; ++i) {
    if ((bits_ >> i) & 1u) out.push_back(static_cast<AllenRelation>(i));
  }
  return out;
}

std::string AllenSet::ToString() const {
  std::string out = "{";
  bool first = true;
  for (AllenRelation r : Members()) {
    if (!first) out += ",";
    out += std::string(AllenRelationName(r));
    first = false;
  }
  out += "}";
  return out;
}

namespace {

/// Composition table, computed once by small-model enumeration.
class CompositionTable {
 public:
  static const CompositionTable& Get() {
    static CompositionTable table;
    return table;
  }

  AllenSet Lookup(AllenRelation r1, AllenRelation r2) const {
    return table_[static_cast<uint8_t>(r1)][static_cast<uint8_t>(r2)];
  }

 private:
  CompositionTable() {
    // Enumerate all intervals with endpoints in {0..11} on the half-open
    // view (s < e). Any qualitative configuration of three intervals
    // involves at most 6 distinct endpoint values, so it embeds into this
    // domain; the enumeration is therefore complete.
    constexpr int kDomain = 12;
    std::vector<Interval> ivs;
    for (int s = 0; s < kDomain; ++s) {
      for (int e = s; e < kDomain; ++e) {
        ivs.emplace_back(s, e);  // closed [s,e] == half-open [s,e+1)
      }
    }
    // rel[i][j] memoizes RelationBetween(ivs[i], ivs[j]).
    const size_t n = ivs.size();
    std::vector<std::vector<uint8_t>> rel(n, std::vector<uint8_t>(n));
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = 0; j < n; ++j) {
        rel[i][j] = static_cast<uint8_t>(RelationBetween(ivs[i], ivs[j]));
      }
    }
    for (size_t a = 0; a < n; ++a) {
      for (size_t b = 0; b < n; ++b) {
        const uint8_t r1 = rel[a][b];
        for (size_t c = 0; c < n; ++c) {
          const uint8_t r2 = rel[b][c];
          table_[r1][r2].Add(static_cast<AllenRelation>(rel[a][c]));
        }
      }
    }
  }

  AllenSet table_[kNumAllenRelations][kNumAllenRelations];
};

}  // namespace

AllenSet ComposeBasic(AllenRelation r1, AllenRelation r2) {
  return CompositionTable::Get().Lookup(r1, r2);
}

AllenSet AllenSet::Compose(AllenSet other) const {
  AllenSet out;
  for (int i = 0; i < kNumAllenRelations; ++i) {
    if (!((bits_ >> i) & 1u)) continue;
    for (int j = 0; j < kNumAllenRelations; ++j) {
      if (!((other.bits_ >> j) & 1u)) continue;
      out = out.Union(ComposeBasic(static_cast<AllenRelation>(i),
                                   static_cast<AllenRelation>(j)));
    }
  }
  return out;
}

}  // namespace temporal
}  // namespace tecore
