#ifndef TECORE_TEMPORAL_INTERVAL_H_
#define TECORE_TEMPORAL_INTERVAL_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <string>

#include "util/status.h"

namespace tecore {
namespace temporal {

/// \brief A point in the discrete, linearly ordered time domain T.
///
/// The paper assumes a finite, discrete time domain (days, minutes, years...).
/// TeCoRe is granularity-agnostic: a TimePoint is just an integer tick.
using TimePoint = int64_t;

/// \brief Smallest representable time point (used as an open lower bound).
inline constexpr TimePoint kMinTime = INT64_MIN / 4;
/// \brief Largest representable time point (used as an open upper bound).
inline constexpr TimePoint kMaxTime = INT64_MAX / 4;

/// \brief A closed, non-empty interval [begin, end] of discrete time points.
///
/// Facts in a UTKG carry a validity interval, e.g.
/// `(CR, coach, Chelsea, [2000,2004])`. Internally Allen's relations are
/// evaluated on the half-open view [begin, end+1), which makes the discrete
/// algebra coincide with the classical continuous one (e.g. [2000,2004]
/// *meets* [2005,2010]).
class Interval {
 public:
  /// \brief Constructs [begin, end]; requires begin <= end.
  Interval(TimePoint begin, TimePoint end);

  /// \brief Degenerate single-point interval [t, t].
  static Interval Point(TimePoint t) { return Interval(t, t); }

  /// \brief Checked factory: error if begin > end or outside domain bounds.
  static Result<Interval> Make(TimePoint begin, TimePoint end);

  /// \brief Parse "[b,e]" or "[b]" (point). Whitespace-tolerant.
  static Result<Interval> Parse(std::string_view text);

  TimePoint begin() const { return begin_; }
  TimePoint end() const { return end_; }

  /// \brief Exclusive end of the half-open view (end() + 1).
  TimePoint end_exclusive() const { return end_ + 1; }

  /// \brief Number of time points covered (end - begin + 1).
  int64_t Duration() const { return end_ - begin_ + 1; }

  /// \brief True if `t` lies inside [begin, end].
  bool Contains(TimePoint t) const { return begin_ <= t && t <= end_; }

  /// \brief True if `other` is fully inside this interval (non-strict).
  bool Contains(const Interval& other) const {
    return begin_ <= other.begin_ && other.end_ <= end_;
  }

  /// \brief True if the two intervals share at least one time point.
  bool Intersects(const Interval& other) const {
    return begin_ <= other.end_ && other.begin_ <= end_;
  }

  /// \brief Intersection if non-empty.
  std::optional<Interval> Intersect(const Interval& other) const;

  /// \brief Smallest interval containing both (the convex hull).
  Interval Hull(const Interval& other) const;

  /// \brief True if this ends strictly before `other` begins (gap allowed).
  bool StrictlyBefore(const Interval& other) const {
    return end_ < other.begin_;
  }

  /// \brief "[b,e]" (or "[t]" for points).
  std::string ToString() const;

  bool operator==(const Interval& other) const {
    return begin_ == other.begin_ && end_ == other.end_;
  }
  bool operator!=(const Interval& other) const { return !(*this == other); }
  /// \brief Lexicographic (begin, end) order; useful for canonical sorting.
  bool operator<(const Interval& other) const {
    return begin_ != other.begin_ ? begin_ < other.begin_ : end_ < other.end_;
  }

 private:
  TimePoint begin_;
  TimePoint end_;
};

}  // namespace temporal
}  // namespace tecore

namespace std {
template <>
struct hash<tecore::temporal::Interval> {
  size_t operator()(const tecore::temporal::Interval& iv) const {
    uint64_t h = static_cast<uint64_t>(iv.begin()) * 0x9E3779B97F4A7C15ULL;
    h ^= static_cast<uint64_t>(iv.end()) + 0x9E3779B97F4A7C15ULL + (h << 6) +
         (h >> 2);
    return static_cast<size_t>(h);
  }
};
}  // namespace std

#endif  // TECORE_TEMPORAL_INTERVAL_H_
