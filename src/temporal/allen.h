#ifndef TECORE_TEMPORAL_ALLEN_H_
#define TECORE_TEMPORAL_ALLEN_H_

#include <array>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "temporal/interval.h"
#include "util/status.h"

namespace tecore {
namespace temporal {

/// \brief The 13 basic relations of Allen's interval algebra.
///
/// Relations are evaluated on the half-open view of closed discrete
/// intervals, so e.g. [2000,2004] kMeets [2005,2010]. Values are bit indexes
/// into AllenSet.
enum class AllenRelation : uint8_t {
  kBefore = 0,        ///< A ends strictly before B begins (with a gap).
  kMeets = 1,         ///< A ends exactly where B begins.
  kOverlaps = 2,      ///< A starts first, they overlap, B ends last.
  kStarts = 3,        ///< Same start, A ends first.
  kDuring = 4,        ///< A strictly inside B.
  kFinishes = 5,      ///< Same end, A starts later.
  kEquals = 6,        ///< Identical intervals.
  kFinishedBy = 7,    ///< Converse of kFinishes.
  kContains = 8,      ///< Converse of kDuring.
  kStartedBy = 9,     ///< Converse of kStarts.
  kOverlappedBy = 10, ///< Converse of kOverlaps.
  kMetBy = 11,        ///< Converse of kMeets.
  kAfter = 12,        ///< Converse of kBefore.
};

/// \brief Number of basic Allen relations.
inline constexpr int kNumAllenRelations = 13;

/// \brief Canonical lower-case name, e.g. "before", "overlapped-by".
std::string_view AllenRelationName(AllenRelation r);

/// \brief Parse a relation name (accepts "overlapped-by"/"overlappedBy").
Result<AllenRelation> ParseAllenRelation(std::string_view name);

/// \brief The converse relation (A r B  <=>  B converse(r) A).
AllenRelation Converse(AllenRelation r);

/// \brief Compute the unique basic relation holding between two intervals.
AllenRelation RelationBetween(const Interval& a, const Interval& b);

/// \brief A set of basic Allen relations, represented as a 13-bit mask.
///
/// General (indefinite) temporal knowledge is a disjunction of basic
/// relations; AllenSet supports the algebra's operations: intersection,
/// union, converse, and composition.
class AllenSet {
 public:
  constexpr AllenSet() : bits_(0) {}
  constexpr explicit AllenSet(uint16_t bits) : bits_(bits & kAllMask) {}
  /// \brief Singleton set {r}.
  constexpr AllenSet(AllenRelation r)  // NOLINT(runtime/explicit)
      : bits_(static_cast<uint16_t>(1u << static_cast<uint8_t>(r))) {}

  /// \brief The full (uninformative) set of all 13 relations.
  static constexpr AllenSet All() { return AllenSet(kAllMask); }
  /// \brief The empty (inconsistent) set.
  static constexpr AllenSet None() { return AllenSet(); }

  /// \brief The set of relations implying a shared time point
  /// (everything except before/after/meets/met-by).
  static AllenSet Intersecting();
  /// \brief {before, after, meets, met-by}: no shared time point.
  static AllenSet Disjoint();

  bool Contains(AllenRelation r) const {
    return (bits_ >> static_cast<uint8_t>(r)) & 1u;
  }
  bool Empty() const { return bits_ == 0; }
  int Count() const { return __builtin_popcount(bits_); }
  uint16_t bits() const { return bits_; }

  AllenSet& Add(AllenRelation r) {
    bits_ |= static_cast<uint16_t>(1u << static_cast<uint8_t>(r));
    return *this;
  }

  AllenSet Union(AllenSet other) const {
    return AllenSet(static_cast<uint16_t>(bits_ | other.bits_));
  }
  AllenSet Intersect(AllenSet other) const {
    return AllenSet(static_cast<uint16_t>(bits_ & other.bits_));
  }
  /// \brief Converse of every member.
  AllenSet ConverseSet() const;

  /// \brief Composition: all r3 s.t. exist A,B,C with A r1 B, B r2 C, A r3 C
  /// for some r1 in this set and r2 in `other` (table-driven, exact).
  AllenSet Compose(AllenSet other) const;

  /// \brief True if `RelationBetween(a,b)` is a member; evaluates a
  /// disjunctive temporal condition on concrete intervals.
  bool Holds(const Interval& a, const Interval& b) const {
    return Contains(RelationBetween(a, b));
  }

  /// \brief Members in enum order.
  std::vector<AllenRelation> Members() const;

  /// \brief "{before,meets}" style rendering.
  std::string ToString() const;

  bool operator==(AllenSet other) const { return bits_ == other.bits_; }
  bool operator!=(AllenSet other) const { return bits_ != other.bits_; }

 private:
  static constexpr uint16_t kAllMask = (1u << kNumAllenRelations) - 1;
  uint16_t bits_;
};

/// \brief Composition of two basic relations (memoized table lookup).
///
/// The 13x13 composition table is *derived*, not hand-typed: on first use it
/// is computed by exhaustively enumerating interval triples over a small
/// integer domain, which is sound and complete because any qualitative
/// configuration of three intervals uses at most six distinct endpoint
/// values and is therefore order-isomorphic to one over {0..11}.
AllenSet ComposeBasic(AllenRelation r1, AllenRelation r2);

}  // namespace temporal
}  // namespace tecore

#endif  // TECORE_TEMPORAL_ALLEN_H_
