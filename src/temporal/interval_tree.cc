#include "temporal/interval_tree.h"

#include <algorithm>

namespace tecore {
namespace temporal {

void IntervalTree::Build(std::vector<std::pair<Interval, PayloadId>> entries) {
  std::sort(entries.begin(), entries.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  nodes_.clear();
  nodes_.reserve(entries.size());
  for (const auto& [iv, id] : entries) {
    Node n;
    n.interval = iv;
    n.id = id;
    n.max_end = iv.end();
    nodes_.push_back(n);
  }
  if (!nodes_.empty()) BuildMaxEnd(0, nodes_.size());
}

TimePoint IntervalTree::BuildMaxEnd(size_t lo, size_t hi) {
  if (lo >= hi) return kMinTime;
  const size_t mid = lo + (hi - lo) / 2;
  TimePoint max_end = nodes_[mid].interval.end();
  max_end = std::max(max_end, BuildMaxEnd(lo, mid));
  max_end = std::max(max_end, BuildMaxEnd(mid + 1, hi));
  nodes_[mid].max_end = max_end;
  return max_end;
}

std::vector<IntervalTree::PayloadId> IntervalTree::Stab(TimePoint t) const {
  return FindIntersecting(Interval::Point(t));
}

std::vector<IntervalTree::PayloadId> IntervalTree::FindIntersecting(
    const Interval& probe) const {
  std::vector<PayloadId> out;
  VisitIntersecting(probe, [&out](PayloadId id) { out.push_back(id); });
  return out;
}

}  // namespace temporal
}  // namespace tecore
