#include "temporal/allen_network.h"

#include <deque>
#include <utility>

#include "util/string_util.h"

namespace tecore {
namespace temporal {

AllenNetwork::AllenNetwork(int num_vars)
    : num_vars_(num_vars),
      edges_(static_cast<size_t>(num_vars) * num_vars, AllenSet::All()) {
  for (int i = 0; i < num_vars_; ++i) {
    edges_[Index(i, i)] = AllenSet(AllenRelation::kEquals);
  }
}

Status AllenNetwork::Constrain(int i, int j, AllenSet relations) {
  if (i < 0 || j < 0 || i >= num_vars_ || j >= num_vars_) {
    return Status::OutOfRange(
        StringPrintf("variable out of range: (%d,%d) with %d vars", i, j,
                     num_vars_));
  }
  if (i == j) {
    if (!relations.Contains(AllenRelation::kEquals)) {
      return Status::InvalidArgument(
          "self-edge must permit 'equals'; constraint is trivially "
          "inconsistent");
    }
    return Status::OK();
  }
  edges_[Index(i, j)] = edges_[Index(i, j)].Intersect(relations);
  edges_[Index(j, i)] = edges_[Index(i, j)].ConverseSet();
  return Status::OK();
}

AllenSet AllenNetwork::RelationsBetween(int i, int j) const {
  return edges_[Index(i, j)];
}

bool AllenNetwork::Propagate() {
  // PC-2: maintain a work queue of edges whose label shrank.
  std::deque<std::pair<int, int>> queue;
  for (int i = 0; i < num_vars_; ++i) {
    for (int j = i + 1; j < num_vars_; ++j) {
      queue.emplace_back(i, j);
    }
  }
  auto revise = [this](int i, int j, int k) {
    // C(i,j) <- C(i,j) ∩ C(i,k) ∘ C(k,j)
    AllenSet refined = edges_[Index(i, j)].Intersect(
        edges_[Index(i, k)].Compose(edges_[Index(k, j)]));
    if (refined == edges_[Index(i, j)]) return false;
    edges_[Index(i, j)] = refined;
    edges_[Index(j, i)] = refined.ConverseSet();
    return true;
  };
  while (!queue.empty()) {
    auto [i, j] = queue.front();
    queue.pop_front();
    for (int k = 0; k < num_vars_; ++k) {
      if (k == i || k == j) continue;
      // Edge (i,j) changed; re-derive (i,k) and (k,j) through it.
      if (revise(i, k, j)) {
        if (edges_[Index(i, k)].Empty()) return false;
        queue.emplace_back(i, k);
      }
      if (revise(k, j, i)) {
        if (edges_[Index(k, j)].Empty()) return false;
        queue.emplace_back(k, j);
      }
    }
    if (edges_[Index(i, j)].Empty()) return false;
  }
  return PossiblyConsistent();
}

bool AllenNetwork::PossiblyConsistent() const {
  for (const AllenSet& e : edges_) {
    if (e.Empty()) return false;
  }
  return true;
}

std::string AllenNetwork::ToString() const {
  std::string out;
  for (int i = 0; i < num_vars_; ++i) {
    for (int j = i + 1; j < num_vars_; ++j) {
      const AllenSet& e = edges_[Index(i, j)];
      if (e == AllenSet::All()) continue;
      out += StringPrintf("t%d -> t%d : ", i, j) + e.ToString() + "\n";
    }
  }
  return out;
}

}  // namespace temporal
}  // namespace tecore
