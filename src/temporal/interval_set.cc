#include "temporal/interval_set.h"

#include <algorithm>

namespace tecore {
namespace temporal {

IntervalSet::IntervalSet(std::vector<Interval> intervals)
    : intervals_(std::move(intervals)) {
  Normalize();
}

void IntervalSet::Normalize() {
  if (intervals_.empty()) return;
  std::sort(intervals_.begin(), intervals_.end());
  std::vector<Interval> merged;
  merged.reserve(intervals_.size());
  Interval cur = intervals_.front();
  for (size_t i = 1; i < intervals_.size(); ++i) {
    const Interval& next = intervals_[i];
    // Merge overlapping or adjacent ([1,2] + [3,4] -> [1,4] in discrete time).
    if (next.begin() <= cur.end() + 1) {
      cur = Interval(cur.begin(), std::max(cur.end(), next.end()));
    } else {
      merged.push_back(cur);
      cur = next;
    }
  }
  merged.push_back(cur);
  intervals_ = std::move(merged);
}

void IntervalSet::Add(const Interval& iv) {
  intervals_.push_back(iv);
  Normalize();
}

IntervalSet IntervalSet::Union(const IntervalSet& other) const {
  std::vector<Interval> all = intervals_;
  all.insert(all.end(), other.intervals_.begin(), other.intervals_.end());
  return IntervalSet(std::move(all));
}

IntervalSet IntervalSet::Intersect(const IntervalSet& other) const {
  std::vector<Interval> out;
  size_t i = 0, j = 0;
  while (i < intervals_.size() && j < other.intervals_.size()) {
    const Interval& a = intervals_[i];
    const Interval& b = other.intervals_[j];
    auto common = a.Intersect(b);
    if (common) out.push_back(*common);
    if (a.end() < b.end()) {
      ++i;
    } else {
      ++j;
    }
  }
  return IntervalSet(std::move(out));
}

IntervalSet IntervalSet::Subtract(const IntervalSet& other) const {
  std::vector<Interval> out;
  size_t j = 0;
  for (const Interval& a : intervals_) {
    TimePoint cursor = a.begin();
    // Advance past subtrahend intervals that end before `a` begins.
    while (j < other.intervals_.size() &&
           other.intervals_[j].end() < a.begin()) {
      ++j;
    }
    size_t k = j;
    while (k < other.intervals_.size() &&
           other.intervals_[k].begin() <= a.end()) {
      const Interval& b = other.intervals_[k];
      if (b.begin() > cursor) {
        out.emplace_back(cursor, b.begin() - 1);
      }
      cursor = std::max(cursor, b.end() + 1);
      if (cursor > a.end()) break;
      ++k;
    }
    if (cursor <= a.end()) out.emplace_back(cursor, a.end());
  }
  return IntervalSet(std::move(out));
}

bool IntervalSet::Contains(TimePoint t) const {
  // Binary search on begin(); candidate is the last interval starting <= t.
  auto it = std::upper_bound(
      intervals_.begin(), intervals_.end(), t,
      [](TimePoint v, const Interval& iv) { return v < iv.begin(); });
  if (it == intervals_.begin()) return false;
  --it;
  return it->Contains(t);
}

bool IntervalSet::Covers(const Interval& iv) const {
  auto it = std::upper_bound(
      intervals_.begin(), intervals_.end(), iv.begin(),
      [](TimePoint v, const Interval& member) { return v < member.begin(); });
  if (it == intervals_.begin()) return false;
  --it;
  return it->Contains(iv);
}

bool IntervalSet::Intersects(const Interval& iv) const {
  auto it = std::upper_bound(
      intervals_.begin(), intervals_.end(), iv.end(),
      [](TimePoint v, const Interval& member) { return v < member.begin(); });
  if (it == intervals_.begin()) return false;
  --it;
  return it->Intersects(iv);
}

int64_t IntervalSet::TotalDuration() const {
  int64_t total = 0;
  for (const Interval& iv : intervals_) total += iv.Duration();
  return total;
}

std::string IntervalSet::ToString() const {
  std::string out = "{";
  for (size_t i = 0; i < intervals_.size(); ++i) {
    if (i > 0) out += ",";
    out += intervals_[i].ToString();
  }
  out += "}";
  return out;
}

}  // namespace temporal
}  // namespace tecore
