#ifndef TECORE_TEMPORAL_INTERVAL_TREE_H_
#define TECORE_TEMPORAL_INTERVAL_TREE_H_

#include <cstdint>
#include <vector>

#include "temporal/interval.h"

namespace tecore {
namespace temporal {

/// \brief Static augmented interval tree mapping intervals to payload ids.
///
/// Backs the temporal index of the quad store: given a probe interval, find
/// every stored fact whose validity interval intersects it (the workhorse of
/// temporal-disjointness constraint grounding). Build once, query many times.
///
/// Implementation: intervals sorted by begin, implicit balanced binary
/// layout, each node augmented with the max end() of its subtree.
class IntervalTree {
 public:
  /// \brief Payload identifier (typically a fact index).
  using PayloadId = uint32_t;

  IntervalTree() = default;

  /// \brief Build from (interval, id) pairs; invalidates previous content.
  void Build(std::vector<std::pair<Interval, PayloadId>> entries);

  /// \brief Number of stored intervals.
  size_t Size() const { return nodes_.size(); }
  bool Empty() const { return nodes_.empty(); }

  /// \brief Ids of all intervals containing `t`, in unspecified order.
  std::vector<PayloadId> Stab(TimePoint t) const;

  /// \brief Ids of all intervals intersecting `probe`.
  std::vector<PayloadId> FindIntersecting(const Interval& probe) const;

  /// \brief Visit ids of intervals intersecting `probe` without allocating.
  template <typename Visitor>
  void VisitIntersecting(const Interval& probe, Visitor&& visit) const {
    if (!nodes_.empty()) VisitRec(0, nodes_.size(), probe, visit);
  }

 private:
  struct Node {
    Interval interval{0, 0};
    PayloadId id = 0;
    TimePoint max_end = 0;  // max end() within [lo, hi) subtree rooted here
  };

  // The tree is stored as a sorted array; node of range [lo, hi) is the
  // middle element, children are the halves (a "balanced BST by midpoint").
  template <typename Visitor>
  void VisitRec(size_t lo, size_t hi, const Interval& probe,
                Visitor& visit) const {
    if (lo >= hi) return;
    const size_t mid = lo + (hi - lo) / 2;
    const Node& node = nodes_[mid];
    if (node.max_end < probe.begin()) return;  // nothing here can intersect
    VisitRec(lo, mid, probe, visit);
    if (node.interval.Intersects(probe)) visit(node.id);
    // Right subtree begins at begin() >= node.begin; prune when past probe.
    if (node.interval.begin() <= probe.end()) {
      VisitRec(mid + 1, hi, probe, visit);
    }
  }

  TimePoint BuildMaxEnd(size_t lo, size_t hi);

  std::vector<Node> nodes_;
};

}  // namespace temporal
}  // namespace tecore

#endif  // TECORE_TEMPORAL_INTERVAL_TREE_H_
