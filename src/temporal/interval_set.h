#ifndef TECORE_TEMPORAL_INTERVAL_SET_H_
#define TECORE_TEMPORAL_INTERVAL_SET_H_

#include <string>
#include <vector>

#include "temporal/interval.h"

namespace tecore {
namespace temporal {

/// \brief A normalized union of disjoint, non-adjacent closed intervals.
///
/// Used wherever a fact's validity is the union of several spells (e.g. a
/// player with two stints at the same club) and for temporal coverage
/// arithmetic in the data generators and statistics.
class IntervalSet {
 public:
  IntervalSet() = default;
  /// \brief Build from arbitrary (possibly overlapping) intervals.
  explicit IntervalSet(std::vector<Interval> intervals);

  /// \brief Add one interval, re-normalizing (merges overlaps/adjacency).
  void Add(const Interval& iv);

  /// \brief Set-union with another set.
  IntervalSet Union(const IntervalSet& other) const;

  /// \brief Set-intersection with another set.
  IntervalSet Intersect(const IntervalSet& other) const;

  /// \brief Set-difference this \ other.
  IntervalSet Subtract(const IntervalSet& other) const;

  /// \brief True if `t` is covered.
  bool Contains(TimePoint t) const;

  /// \brief True if every point of `iv` is covered.
  bool Covers(const Interval& iv) const;

  /// \brief True if some member intersects `iv`.
  bool Intersects(const Interval& iv) const;

  /// \brief Total number of covered time points.
  int64_t TotalDuration() const;

  bool Empty() const { return intervals_.empty(); }
  size_t Size() const { return intervals_.size(); }
  const std::vector<Interval>& intervals() const { return intervals_; }

  /// \brief "{[a,b],[c,d]}" rendering.
  std::string ToString() const;

  bool operator==(const IntervalSet& other) const {
    return intervals_ == other.intervals_;
  }

 private:
  void Normalize();

  // Sorted, pairwise disjoint, non-adjacent.
  std::vector<Interval> intervals_;
};

}  // namespace temporal
}  // namespace tecore

#endif  // TECORE_TEMPORAL_INTERVAL_SET_H_
