// Crash-safe recovery: the property the durability layer exists for is
// "kill -9 at any instant loses no acknowledged write". Covered here
// three ways:
//
//  * a truncation sweep that cuts the WAL at every byte offset of its
//    final record and checks recovery restores exactly the acknowledged
//    prefix, with a bit-identical solve objective;
//  * real SIGKILLs delivered at every armed crash point in a forked
//    child, with the parent recovering the store afterwards;
//  * injected I/O errors, which must surface as IoError with nothing
//    published.
//
// Plus registry-level boot recovery and checkpoint compaction.

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <csignal>

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "api/engine.h"
#include "api/registry.h"
#include "core/resolver.h"
#include "rdf/io.h"
#include "storage/fault.h"
#include "storage/fs.h"
#include "storage/kb_storage.h"
#include "storage/wal.h"
#include "util/file.h"

namespace tecore {
namespace {

constexpr char kGraph[] = R"(
  CR coach Chelsea [2000,2004] 0.9 .
  CR coach Leicester [2015,2017] 0.7 .
  CR playsFor Palermo [1984,1986] 0.5 .
)";

constexpr char kConstraint[] =
    "c2: quad(x, coach, y, t) & quad(x, coach, z, t') & y != z "
    "-> disjoint(t, t') .";

std::string TestDir(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

/// Open (or recover) a durable engine rooted at `dir`.
std::shared_ptr<api::Engine> OpenEngine(const std::string& dir,
                                        storage::StorageOptions options = {}) {
  auto opened = storage::KbStorage::Open(dir, options);
  if (!opened.ok()) return nullptr;
  auto engine = std::make_shared<api::Engine>();
  if (!engine->AttachStorage(*opened).ok()) return nullptr;
  return engine;
}

std::string GraphText(const api::Engine& engine) {
  auto snap = engine.snapshot();
  return snap->has_graph() ? rdf::WriteGraphText(*snap->graph) : "";
}

/// Copy every regular file of a KB dir (MANIFEST, data files, wal.log)
/// into a fresh directory, so destructive recovery runs on a clone.
void CloneKbDir(const std::string& from, const std::string& to) {
  ASSERT_TRUE(storage::RemoveDirRecursive(to).ok());
  ASSERT_TRUE(storage::MakeDirs(to).ok());
  auto entries = storage::ListDir(from);
  ASSERT_TRUE(entries.ok());
  for (const std::string& entry : *entries) {
    auto contents = storage::ReadFile(storage::JoinPath(from, entry));
    ASSERT_TRUE(contents.ok());
    ASSERT_TRUE(
        util::WriteStringToFile(storage::JoinPath(to, entry), *contents)
            .ok());
  }
}

TEST(Recovery, AcknowledgedWritesSurviveReopen) {
  const std::string dir = TestDir("recover_basic");
  ASSERT_TRUE(storage::KbStorage::Destroy(dir).ok());
  uint64_t version = 0;
  double objective = 0.0;
  std::string graph_text;
  {
    auto engine = OpenEngine(dir);
    ASSERT_NE(engine, nullptr);
    ASSERT_TRUE(engine->LoadGraphText(kGraph).ok());
    ASSERT_TRUE(engine->AddRulesText(kConstraint).ok());
    ASSERT_TRUE(engine
                    ->ApplyEditScript("+ CR coach Napoli [2001,2003] 0.6 .",
                                      core::ResolveOptions())
                    .ok());
    auto solved = engine->Solve(core::ResolveOptions());
    ASSERT_TRUE(solved.ok());
    version = engine->version();
    objective = solved->result->objective;
    graph_text = GraphText(*engine);
  }
  auto recovered = OpenEngine(dir);
  ASSERT_NE(recovered, nullptr);
  EXPECT_EQ(recovered->version(), version);
  EXPECT_EQ(GraphText(*recovered), graph_text);
  EXPECT_EQ(recovered->snapshot()->rules->Size(), 1u);
  // Results are caches, not durable state: recovery does not re-solve,
  // but the determinism contract makes the next solve bit-identical.
  EXPECT_FALSE(recovered->snapshot()->has_result());
  auto resolved = recovered->Solve(core::ResolveOptions());
  ASSERT_TRUE(resolved.ok());
  EXPECT_EQ(resolved->result->objective, objective);
  ASSERT_TRUE(storage::KbStorage::Destroy(dir).ok());
}

// Cut the WAL at every byte offset inside its final record: recovery must
// restore exactly the acknowledged prefix (the full final batch when the
// cut is at the record boundary, the previous batch otherwise) and solve
// to the reference objective of that prefix.
TEST(Recovery, TruncatedFinalRecordRecoversAcknowledgedPrefix) {
  const std::string dir = TestDir("recover_truncate");
  ASSERT_TRUE(storage::KbStorage::Destroy(dir).ok());
  const char* kBatches[] = {
      "+ CR coach Napoli [2001,2003] 0.6 .",
      "+ CR coach Lazio [2005,2007] 0.4 .",
      "+ CR playsFor Juventus [1980,1983] 0.8 .",
  };
  std::vector<std::string> graph_after;  // canonical text after each batch
  {
    auto engine = OpenEngine(dir);
    ASSERT_NE(engine, nullptr);
    ASSERT_TRUE(engine->LoadGraphText(kGraph).ok());
    ASSERT_TRUE(engine->AddRulesText(kConstraint).ok());
    for (const char* batch : kBatches) {
      ASSERT_TRUE(
          engine->ApplyEditScript(batch, core::ResolveOptions()).ok());
      graph_after.push_back(GraphText(*engine));
    }
  }
  const std::string wal_path = storage::JoinPath(dir, "wal.log");
  auto scan = storage::Wal::ScanFile(wal_path);
  ASSERT_TRUE(scan.ok());
  ASSERT_FALSE(scan->torn_tail);
  ASSERT_GE(scan->records.size(), 2u);
  const std::string last_frame =
      storage::Wal::EncodeRecord(scan->records.back());
  const uint64_t boundary = scan->valid_bytes - last_frame.size();
  auto full_log = storage::ReadFile(wal_path);
  ASSERT_TRUE(full_log.ok());

  // Reference objectives, computed on in-memory engines so the on-disk
  // store under test contributes nothing to them.
  auto ObjectiveOf = [](const std::string& graph_text) {
    api::Engine reference;
    EXPECT_TRUE(reference.LoadGraphText(graph_text).ok());
    EXPECT_TRUE(reference.AddRulesText(kConstraint).ok());
    auto solved = reference.Solve(core::ResolveOptions());
    EXPECT_TRUE(solved.ok());
    return solved->result->objective;
  };
  const double objective_full = ObjectiveOf(graph_after[2]);
  const double objective_prev = ObjectiveOf(graph_after[1]);

  const std::string clone = TestDir("recover_truncate_clone");
  for (size_t cut = 0; cut <= last_frame.size(); ++cut) {
    CloneKbDir(dir, clone);
    ASSERT_TRUE(util::WriteStringToFile(
                    storage::JoinPath(clone, "wal.log"),
                    full_log->substr(0, boundary + cut))
                    .ok());
    auto recovered = OpenEngine(clone);
    ASSERT_NE(recovered, nullptr) << "cut=" << cut;
    const bool full = cut == last_frame.size();
    EXPECT_EQ(GraphText(*recovered), full ? graph_after[2] : graph_after[1])
        << "cut=" << cut;
    auto solved = recovered->Solve(core::ResolveOptions());
    ASSERT_TRUE(solved.ok()) << "cut=" << cut;
    EXPECT_EQ(solved->result->objective,
              full ? objective_full : objective_prev)
        << "cut=" << cut;
  }
  ASSERT_TRUE(storage::KbStorage::Destroy(dir).ok());
  ASSERT_TRUE(storage::KbStorage::Destroy(clone).ok());
}

/// Fork, arm `point` in the child, run one edit batch against a durable
/// engine at `dir`, and require the child to die by SIGKILL at the point.
/// Returns false when the child survived (point never reached).
bool CrashChildAt(const std::string& point, const std::string& dir,
                  const storage::StorageOptions& options) {
  const pid_t pid = fork();
  if (pid == 0) {
    // Arm only after recovery: AttachStorage publishes too, and the test
    // wants the kill inside the *edit*, not inside boot replay.
    auto engine = OpenEngine(dir, options);
    if (engine == nullptr) _exit(2);
    storage::ArmCrashPoint(point);
    engine->ApplyEditScript("+ CR coach Napoli [2001,2003] 0.6 .",
                            core::ResolveOptions());
    _exit(1);  // survived: the crash point was never reached
  }
  int wstatus = 0;
  if (waitpid(pid, &wstatus, 0) != pid) return false;
  return WIFSIGNALED(wstatus) && WTERMSIG(wstatus) == SIGKILL;
}

TEST(Recovery, SigkillAtEveryCrashPointLosesNoAcknowledgedWrite) {
  struct Case {
    const char* point;
    bool edit_must_survive;  // record fully in the log before the kill
  };
  const Case kCases[] = {
      {"wal:before_append", false},
      {"wal:mid_append", false},
      {"wal:after_append", true},
      {"wal:after_sync", true},
      {"engine:before_publish", true},
  };
  for (const Case& c : kCases) {
    const std::string dir =
        TestDir(std::string("recover_kill_") +
                (c.point + std::string(c.point).find(':') + 1));
    ASSERT_TRUE(storage::KbStorage::Destroy(dir).ok());
    std::string graph_before;
    uint64_t version_before = 0;
    {
      auto engine = OpenEngine(dir);
      ASSERT_NE(engine, nullptr);
      ASSERT_TRUE(engine->LoadGraphText(kGraph).ok());
      graph_before = GraphText(*engine);
      version_before = engine->version();
    }
    ASSERT_TRUE(CrashChildAt(c.point, dir, storage::StorageOptions()))
        << c.point;
    auto recovered = OpenEngine(dir);
    ASSERT_NE(recovered, nullptr) << c.point;
    if (c.edit_must_survive) {
      // The record hit the log before the kill; recovery replays it.
      EXPECT_EQ(recovered->version(), version_before + 1) << c.point;
      EXPECT_NE(GraphText(*recovered), graph_before) << c.point;
    } else {
      // Nothing durable happened; the store is exactly the pre-edit state
      // (for mid_append, after truncating the torn half-record).
      EXPECT_EQ(recovered->version(), version_before) << c.point;
      EXPECT_EQ(GraphText(*recovered), graph_before) << c.point;
    }
    ASSERT_TRUE(storage::KbStorage::Destroy(dir).ok());
  }
}

TEST(Recovery, SigkillDuringCheckpointIsInvisibleAfterRecovery) {
  for (const char* point :
       {"checkpoint:before_manifest", "checkpoint:before_wal_reset"}) {
    const std::string dir = TestDir(std::string("recover_ckpt_") +
                                    (point + std::string(point).find(':') + 1));
    ASSERT_TRUE(storage::KbStorage::Destroy(dir).ok());
    storage::StorageOptions options;
    options.checkpoint_wal_records = 1;  // checkpoint right after the edit
    std::string graph_before;
    {
      auto engine = OpenEngine(dir, options);
      ASSERT_NE(engine, nullptr);
      ASSERT_TRUE(engine->LoadGraphText(kGraph).ok());
      graph_before = GraphText(*engine);
    }
    ASSERT_TRUE(CrashChildAt(point, dir, options)) << point;
    // Both points are after the WAL append + publish would have happened;
    // whether the manifest made it or not, the edit must be recovered —
    // from the new checkpoint, or from the old one plus the WAL.
    auto recovered = OpenEngine(dir, options);
    ASSERT_NE(recovered, nullptr) << point;
    EXPECT_NE(GraphText(*recovered), graph_before) << point;
    EXPECT_NE(GraphText(*recovered).find("Napoli"), std::string::npos)
        << point;
    ASSERT_TRUE(storage::KbStorage::Destroy(dir).ok());
  }
}

TEST(Recovery, InjectedWalFailurePublishesNothing) {
  const std::string dir = TestDir("recover_iofail");
  ASSERT_TRUE(storage::KbStorage::Destroy(dir).ok());
  auto engine = OpenEngine(dir);
  ASSERT_NE(engine, nullptr);
  ASSERT_TRUE(engine->LoadGraphText(kGraph).ok());
  const uint64_t version = engine->version();
  const std::string graph_text = GraphText(*engine);

  storage::InjectIoFailures("wal:append", 1);
  auto failed = engine->ApplyEditScript("+ CR coach Napoli [2001,2003] 0.6 .",
                                        core::ResolveOptions());
  storage::InjectIoFailures("wal:append", 0);
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.status().code(), StatusCode::kIoError);
  EXPECT_EQ(engine->version(), version);
  EXPECT_EQ(GraphText(*engine), graph_text);

  // The same write goes through once the fault clears, and survives.
  ASSERT_TRUE(engine->ApplyEditScript("+ CR coach Napoli [2001,2003] 0.6 .",
                                      core::ResolveOptions())
                  .ok());
  EXPECT_EQ(engine->version(), version + 1);
  engine.reset();
  auto recovered = OpenEngine(dir);
  ASSERT_NE(recovered, nullptr);
  EXPECT_EQ(recovered->version(), version + 1);
  ASSERT_TRUE(storage::KbStorage::Destroy(dir).ok());
}

TEST(Recovery, CheckpointCompactionKeepsRecoveryExact) {
  const std::string dir = TestDir("recover_compact");
  ASSERT_TRUE(storage::KbStorage::Destroy(dir).ok());
  storage::StorageOptions options;
  options.checkpoint_wal_records = 2;
  std::string graph_text;
  uint64_t version = 0;
  {
    auto engine = OpenEngine(dir, options);
    ASSERT_NE(engine, nullptr);
    ASSERT_TRUE(engine->LoadGraphText(kGraph).ok());
    const char* kBatches[] = {
        "+ CR coach Napoli [2001,2003] 0.6 .",
        "+ CR coach Lazio [2005,2007] 0.4 .",
        "+ CR playsFor Juventus [1980,1983] 0.8 .",
        "- CR coach Lazio [2005,2007] 0.4 .",
        "+ CR coach Milan [2009,2010] 0.3 .",
    };
    for (const char* batch : kBatches) {
      ASSERT_TRUE(
          engine->ApplyEditScript(batch, core::ResolveOptions()).ok());
    }
    graph_text = GraphText(*engine);
    version = engine->version();
    // The threshold must have compacted at least once: the log is shorter
    // than five batches' worth of records.
    auto scan =
        storage::Wal::ScanFile(storage::JoinPath(dir, "wal.log"));
    ASSERT_TRUE(scan.ok());
    EXPECT_LT(scan->records.size(), 5u);
  }
  auto recovered = OpenEngine(dir, options);
  ASSERT_NE(recovered, nullptr);
  EXPECT_EQ(recovered->version(), version);
  EXPECT_EQ(GraphText(*recovered), graph_text);
  ASSERT_TRUE(storage::KbStorage::Destroy(dir).ok());
}

TEST(Recovery, RegistryRecoversEveryKbOnBoot) {
  const std::string data_dir = TestDir("recover_registry");
  ASSERT_TRUE(storage::RemoveDirRecursive(data_dir).ok());
  api::EngineRegistry::Options options;
  options.data_dir = data_dir;
  uint64_t alpha_version = 0;
  std::string alpha_graph;
  {
    api::EngineRegistry registry(options);
    auto alpha = registry.Create("alpha");
    ASSERT_TRUE(alpha.ok());
    auto beta = registry.Create("beta");
    ASSERT_TRUE(beta.ok());
    ASSERT_TRUE((*alpha)->LoadGraphText(kGraph).ok());
    ASSERT_TRUE((*alpha)
                    ->ApplyEditScript("+ CR coach Napoli [2001,2003] 0.6 .",
                                      core::ResolveOptions())
                    .ok());
    ASSERT_TRUE((*beta)->AddRulesText(kConstraint).ok());
    alpha_version = (*alpha)->version();
    alpha_graph = GraphText(**alpha);
  }
  api::EngineRegistry registry(options);
  auto recovered = registry.RecoverKbs();
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(recovered->size(), 2u);
  auto alpha = registry.Get("alpha");
  ASSERT_TRUE(alpha.ok());
  EXPECT_EQ((*alpha)->version(), alpha_version);
  EXPECT_EQ(GraphText(**alpha), alpha_graph);
  auto beta = registry.Get("beta");
  ASSERT_TRUE(beta.ok());
  EXPECT_EQ((*beta)->snapshot()->rules->Size(), 1u);

  // Deleting a KB removes its directory; a later boot does not resurrect.
  ASSERT_TRUE(registry.Delete("beta").ok());
  EXPECT_FALSE(
      storage::PathExists(storage::JoinPath(data_dir, "kbs/beta")));
  ASSERT_TRUE(storage::RemoveDirRecursive(data_dir).ok());
}

}  // namespace
}  // namespace tecore
