// api::Engine semantics: snapshot isolation, monotone versions, solve
// caching, edit atomicity — the single-writer/many-reader contract the
// CLI, Session and tecore-server all ride on.

#include "api/engine.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "api/types.h"
#include "core/resolver.h"
#include "rules/library.h"
#include "util/json.h"
#include "util/string_util.h"

namespace tecore {
namespace {

constexpr char kFig1Utkg[] = R"(
  CR coach Chelsea [2000,2004] 0.9 .
  CR coach Leicester [2015,2017] 0.7 .
  CR playsFor Palermo [1984,1986] 0.5 .
  CR birthDate 1951 [1951,2017] 1.0 .
  CR coach Napoli [2001,2003] 0.6 .
)";

constexpr char kDisjointConstraint[] =
    "c2: quad(x, coach, y, t) & quad(x, coach, z, t') & y != z "
    "-> disjoint(t, t') .";

TEST(ApiEngine, PristineSnapshotIsVersionZero) {
  api::Engine engine;
  auto snap = engine.snapshot();
  EXPECT_EQ(snap->version, 0u);
  EXPECT_FALSE(snap->has_graph());
  EXPECT_FALSE(snap->has_result());
  EXPECT_TRUE(snap->rules->Empty());
  EXPECT_TRUE(snap->CompletePredicate("").empty());
  EXPECT_FALSE(engine.GraphStats().ok());
  EXPECT_FALSE(engine.Solve(core::ResolveOptions()).ok());
  EXPECT_FALSE(
      engine.ApplyEditScript("+ a p b [1,2] .", core::ResolveOptions()).ok());
  EXPECT_FALSE(snap->DetectConflicts().ok());
  EXPECT_FALSE(snap->SuggestConstraints().ok());
}

TEST(ApiEngine, WritesBumpVersionMonotonically) {
  api::Engine engine;
  ASSERT_TRUE(engine.LoadGraphText(kFig1Utkg).ok());
  EXPECT_EQ(engine.version(), 1u);
  ASSERT_TRUE(engine.AddRulesText(kDisjointConstraint).ok());
  EXPECT_EQ(engine.version(), 2u);
  auto solved = engine.Solve(core::ResolveOptions());
  ASSERT_TRUE(solved.ok()) << solved.status().ToString();
  EXPECT_EQ(solved->version, 3u);
  EXPECT_FALSE(solved->cached);
  auto edited = engine.ApplyEditScript("+ CR coach Bari [2006,2008] 0.5 .",
                                       core::ResolveOptions());
  ASSERT_TRUE(edited.ok()) << edited.status().ToString();
  EXPECT_EQ(edited->version, 4u);
  EXPECT_EQ(engine.version(), 4u);
}

TEST(ApiEngine, SolveIsCachedUntilInvalidated) {
  api::Engine engine;
  ASSERT_TRUE(engine.LoadGraphText(kFig1Utkg).ok());
  ASSERT_TRUE(engine.AddRulesText(kDisjointConstraint).ok());
  core::ResolveOptions options;
  auto first = engine.Solve(options);
  ASSERT_TRUE(first.ok());
  auto second = engine.Solve(options);
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second->cached);
  EXPECT_EQ(second->version, first->version);
  EXPECT_EQ(second->result.get(), first->result.get());  // same object

  // Thread counts are result-irrelevant: still a cache hit.
  core::ResolveOptions threaded = options;
  threaded.num_threads = 4;
  auto third = engine.Solve(threaded);
  ASSERT_TRUE(third.ok());
  EXPECT_TRUE(third->cached);

  // A result-relevant change misses the cache.
  core::ResolveOptions psl = options;
  psl.solver = rules::SolverKind::kPsl;
  auto fourth = engine.Solve(psl);
  ASSERT_TRUE(fourth.ok());
  EXPECT_FALSE(fourth->cached);
  EXPECT_GT(fourth->version, first->version);

  // Rule edits invalidate the cached result; the returned snapshot is
  // the publish this write produced.
  auto cleared = engine.ClearRules();
  ASSERT_TRUE(cleared.ok());
  EXPECT_FALSE((*cleared)->has_result());
  EXPECT_TRUE((*cleared)->rules->Empty());
  EXPECT_FALSE(engine.snapshot()->has_result());
}

TEST(ApiEngine, SnapshotsAreImmutableUnderLaterWrites) {
  api::Engine engine;
  ASSERT_TRUE(engine.LoadGraphText(kFig1Utkg).ok());
  ASSERT_TRUE(engine.AddRulesText(kDisjointConstraint).ok());
  auto solved = engine.Solve(core::ResolveOptions());
  ASSERT_TRUE(solved.ok());
  auto old_snap = engine.snapshot();
  const size_t old_live = old_snap->graph->NumLiveFacts();
  const uint64_t old_version = old_snap->version;
  const auto* old_result = old_snap->result.get();

  auto edited = engine.ApplyEditScript(
      "+ CR coach Bari [2006,2008] 0.5 .\n"
      "- CR coach Napoli [2001,2003] .\n",
      core::ResolveOptions());
  ASSERT_TRUE(edited.ok()) << edited.status().ToString();
  EXPECT_EQ(edited->applied.inserted, 1u);
  EXPECT_EQ(edited->applied.retracted, 1u);

  // The old snapshot is untouched: same version, graph and result.
  EXPECT_EQ(old_snap->version, old_version);
  EXPECT_EQ(old_snap->graph->NumLiveFacts(), old_live);
  EXPECT_EQ(old_snap->result.get(), old_result);
  // And the new one reflects the edit.
  auto new_snap = engine.snapshot();
  EXPECT_EQ(new_snap->graph->NumLiveFacts(), old_live);  // +1 -1
  EXPECT_NE(new_snap->result.get(), old_result);
  EXPECT_GT(new_snap->version, old_version);
}

TEST(ApiEngine, RuleOnlyWritesShareTheFrozenGraph) {
  api::Engine engine;
  ASSERT_TRUE(engine.LoadGraphText(kFig1Utkg).ok());
  auto loaded = engine.snapshot();
  // Rule writes and solves don't touch the graph: their snapshots share
  // the frozen clone instead of paying an O(graph) republish.
  auto with_rules = engine.AddRulesText(kDisjointConstraint);
  ASSERT_TRUE(with_rules.ok());
  EXPECT_EQ(with_rules->snapshot->graph.get(), loaded->graph.get());
  EXPECT_EQ(with_rules->snapshot->stats.get(), loaded->stats.get());
  EXPECT_EQ(with_rules->snapshot->predicates.get(),
            loaded->predicates.get());
  auto solved = engine.Solve(core::ResolveOptions());
  ASSERT_TRUE(solved.ok());
  EXPECT_EQ(solved->snapshot->graph.get(), loaded->graph.get());
  // Edits do touch the graph: a fresh clone is published.
  auto edited = engine.ApplyEditScript("+ CR coach Bari [2006,2008] 0.5 .",
                                       core::ResolveOptions());
  ASSERT_TRUE(edited.ok());
  EXPECT_NE(edited->snapshot->graph.get(), loaded->graph.get());
}

TEST(ApiEngine, FailedEditBatchPublishesNothing) {
  api::Engine engine;
  ASSERT_TRUE(engine.LoadGraphText(kFig1Utkg).ok());
  ASSERT_TRUE(engine.AddRulesText(kDisjointConstraint).ok());
  const uint64_t version = engine.version();
  auto bad = engine.ApplyEditScript(
      "+ CR coach Bari [2006,2008] 0.5 .\n"
      "- no such fact [1,2] .\n",
      core::ResolveOptions());
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(engine.version(), version);
  EXPECT_EQ(engine.snapshot()->graph->NumLiveFacts(), 5u);
}

TEST(ApiEngine, ConflictReportIsCachedPerSnapshot) {
  api::Engine engine;
  ASSERT_TRUE(engine.LoadGraphText(kFig1Utkg).ok());
  ASSERT_TRUE(engine.AddRulesText(kDisjointConstraint).ok());
  auto snap = engine.snapshot();
  auto first = snap->DetectConflicts();
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_EQ((*first)->NumConflicts(), 1u);
  auto second = snap->DetectConflicts();
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first->get(), second->get());  // compute-once

  // Custom options bypass the cache but agree on the answer here.
  ground::GroundingOptions custom;
  custom.semi_naive = false;
  auto fresh = snap->DetectConflicts(custom);
  ASSERT_TRUE(fresh.ok());
  EXPECT_NE(fresh->get(), first->get());
  EXPECT_EQ((*fresh)->NumConflicts(), 1u);
}

TEST(ApiEngine, CompletionIsSortedAndPrefixFiltered) {
  api::Engine engine;
  ASSERT_TRUE(engine.LoadGraphText(kFig1Utkg).ok());
  auto snap = engine.snapshot();
  EXPECT_EQ(snap->CompletePredicate("coa"),
            std::vector<std::string>({"coach"}));
  EXPECT_TRUE(snap->CompletePredicate("CR").empty());  // subject, not pred
  auto all = snap->CompletePredicate("");
  EXPECT_EQ(all, std::vector<std::string>(
                     {"birthDate", "coach", "playsFor"}));
}

TEST(ApiEngine, ResultAndSnapshotGraphShareFactIds) {
  api::Engine engine;
  ASSERT_TRUE(engine.LoadGraphText(kFig1Utkg).ok());
  ASSERT_TRUE(engine.AddRulesText(kDisjointConstraint).ok());
  auto solved = engine.Solve(core::ResolveOptions());
  ASSERT_TRUE(solved.ok());
  ASSERT_EQ(solved->result->removed_facts.size(), 1u);
  // The removed fact renders against the outcome's snapshot graph.
  const std::string rendered = solved->snapshot->graph->FactToString(
      solved->result->removed_facts[0]);
  EXPECT_NE(rendered.find("Napoli"), std::string::npos) << rendered;
  // kept + removed partition the snapshot's live facts.
  EXPECT_EQ(solved->result->kept_facts.size() +
                solved->result->removed_facts.size(),
            solved->snapshot->graph->NumLiveFacts());
}

TEST(ApiEngine, DtoJsonShapes) {
  api::Engine engine;
  ASSERT_TRUE(engine.LoadGraphText(kFig1Utkg).ok());
  ASSERT_TRUE(engine.AddRulesText(kDisjointConstraint).ok());
  auto snap = engine.snapshot();

  util::Json info = api::GraphInfoJson(*snap);
  EXPECT_EQ(info.GetInt("version", -1), 2);
  EXPECT_EQ(info.GetInt("num_facts", -1), 5);
  EXPECT_TRUE(info.GetBool("has_graph", false));

  util::Json stats = api::StatsJson(*snap);
  ASSERT_NE(stats.Find("stats"), nullptr);
  EXPECT_EQ(stats.Find("stats")->GetInt("num_facts", -1), 5);

  util::Json rules = api::RulesJson(*snap);
  EXPECT_EQ(rules.GetInt("num_rules", -1), 1);
  EXPECT_EQ(rules.Find("rules")->items()[0].GetString("kind", ""),
            "constraint");

  // Round-trip a request DTO through JSON.
  auto parsed = util::Json::Parse(
      "{\"solver\":\"psl\",\"threshold\":0.25,\"max_facts\":7}");
  ASSERT_TRUE(parsed.ok());
  auto req = api::SolveRequest::FromJson(*parsed);
  ASSERT_TRUE(req.ok());
  EXPECT_EQ(req->options.solver, rules::SolverKind::kPsl);
  EXPECT_EQ(req->options.derived_threshold, 0.25);
  EXPECT_EQ(req->max_facts, 7u);
  EXPECT_FALSE(api::SolveRequest::FromJson(
                   *util::Json::Parse("{\"solver\":\"nope\"}"))
                   .ok());
}

TEST(ApiEngine, PublishListenersSeeEveryVersionInOrder) {
  api::Engine engine;
  std::vector<uint64_t> seen;
  const uint64_t id = engine.AddPublishListener(
      [&seen](std::shared_ptr<const api::Snapshot> snap) {
        ASSERT_NE(snap, nullptr);
        seen.push_back(snap->version);
      });
  ASSERT_TRUE(engine.LoadGraphText(kFig1Utkg).ok());
  ASSERT_TRUE(engine.AddRulesText(kDisjointConstraint).ok());
  ASSERT_TRUE(engine.Solve(core::ResolveOptions()).ok());
  for (int b = 0; b < 5; ++b) {
    ASSERT_TRUE(engine
                    .ApplyEditScript(
                        StringPrintf("+ CR coach club%d [%d,%d] 0.5 .", b,
                                     2006 + b, 2007 + b),
                        core::ResolveOptions())
                    .ok());
  }
  // One callback per publish, versions 1..8, strictly in order.
  ASSERT_EQ(seen.size(), 8u);
  for (size_t i = 0; i < seen.size(); ++i) {
    EXPECT_EQ(seen[i], i + 1);
  }
  // After removal the listener is silent; the snapshot the callback got
  // was the one snapshot() served at that instant.
  engine.RemovePublishListener(id);
  ASSERT_TRUE(engine.AddRulesText("c3: quad(x, playsFor, y, t) & "
                                  "quad(x, playsFor, z, t') & y != z -> "
                                  "disjoint(t, t') .")
                  .ok());
  EXPECT_EQ(seen.size(), 8u);
}

TEST(ApiEngine, CloseForListenersSignalsAndDropsObservers) {
  api::Engine engine;
  int closes = 0;
  int publishes = 0;
  engine.AddPublishListener(
      [&](std::shared_ptr<const api::Snapshot> snap) {
        if (snap == nullptr) {
          ++closes;
        } else {
          ++publishes;
        }
      });
  ASSERT_TRUE(engine.LoadGraphText(kFig1Utkg).ok());
  engine.CloseForListeners();
  engine.CloseForListeners();  // idempotent: one close signal only
  EXPECT_EQ(publishes, 1);
  EXPECT_EQ(closes, 1);
  // Writes on a retired engine still publish snapshots (the registry has
  // merely unlisted it) but no longer notify the dropped listeners.
  ASSERT_TRUE(engine.AddRulesText(kDisjointConstraint).ok());
  EXPECT_EQ(publishes, 1);
  // A listener added after close is told immediately.
  engine.AddPublishListener(
      [&](std::shared_ptr<const api::Snapshot> snap) {
        if (snap == nullptr) ++closes;
      });
  EXPECT_EQ(closes, 2);
}

TEST(ApiEngine, PublishCachesReuseAcrossEdits) {
  // Publish-path caches: the completion index is shared between snapshots
  // while the set of live predicates is stable, and a cached conflict
  // report is carried forward when an edit touches no rule predicate.
  api::Engine engine;
  ASSERT_TRUE(engine.LoadGraphText(kFig1Utkg).ok());
  ASSERT_TRUE(engine.AddRulesText(kDisjointConstraint).ok());
  auto counters = engine.cache_counters();
  EXPECT_EQ(counters.completion_rebuilt, 1u);  // the initial load
  EXPECT_EQ(counters.completion_reused, 0u);
  EXPECT_EQ(counters.conflict_carried, 0u);

  // Compute (and cache) the conflict report for the current snapshot.
  auto baseline_report = engine.snapshot()->DetectConflicts();
  ASSERT_TRUE(baseline_report.ok());
  const size_t baseline_conflicts = (*baseline_report)->NumConflicts();
  EXPECT_GT(baseline_conflicts, 0u);

  // An edit on a predicate no rule mentions: the completion index is
  // rebuilt (new predicate => predicate set changed) but the conflict
  // report carries over with its input-fact count patched.
  auto hobby = engine.ApplyEditScript("+ CR hobby golf [1970,2017] 0.8 .",
                                      core::ResolveOptions());
  ASSERT_TRUE(hobby.ok()) << hobby.status().ToString();
  counters = engine.cache_counters();
  EXPECT_EQ(counters.completion_rebuilt, 2u);
  EXPECT_EQ(counters.conflict_carried, 1u);
  auto carried = hobby->snapshot->DetectConflicts();
  ASSERT_TRUE(carried.ok());
  EXPECT_EQ((*carried)->NumConflicts(), baseline_conflicts);
  EXPECT_EQ((*carried)->num_input_facts,
            hobby->snapshot->graph->NumLiveFacts());

  // Same predicate again: predicate set unchanged, completion index is
  // shared with the previous snapshot (same object), report carried again.
  auto again = engine.ApplyEditScript("+ CR hobby chess [1960,2017] 0.7 .",
                                      core::ResolveOptions());
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  counters = engine.cache_counters();
  EXPECT_EQ(counters.completion_reused, 1u);
  EXPECT_EQ(counters.completion_rebuilt, 2u);
  EXPECT_EQ(counters.conflict_carried, 2u);
  EXPECT_EQ(again->snapshot->predicates, hobby->snapshot->predicates);

  // An edit on a rule predicate must NOT carry the report: the new coach
  // spell overlaps both existing ones and creates new conflicts.
  auto coach = engine.ApplyEditScript("+ CR coach Bari [2000,2003] 0.5 .",
                                      core::ResolveOptions());
  ASSERT_TRUE(coach.ok()) << coach.status().ToString();
  counters = engine.cache_counters();
  EXPECT_EQ(counters.conflict_carried, 2u);  // unchanged
  EXPECT_EQ(counters.completion_reused, 2u);  // coach already existed
  auto recomputed = coach->snapshot->DetectConflicts();
  ASSERT_TRUE(recomputed.ok());
  EXPECT_GT((*recomputed)->NumConflicts(), baseline_conflicts);
}

}  // namespace
}  // namespace tecore
