// api::EngineRegistry semantics: name validation, lifecycle, and the
// concurrency contract — concurrent create/delete of the same name,
// reads racing a DELETE (must see NotFound or a self-consistent engine,
// never a torn one). Run under -DTECORE_SANITIZE=thread in CI.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "api/registry.h"
#include "storage/fs.h"
#include "util/string_util.h"

namespace tecore {
namespace api {
namespace {

TEST(EngineRegistryTest, ValidatesNames) {
  EXPECT_TRUE(EngineRegistry::ValidateName("default").ok());
  EXPECT_TRUE(EngineRegistry::ValidateName("kb-7_x").ok());
  EXPECT_TRUE(EngineRegistry::ValidateName("0").ok());
  EXPECT_FALSE(EngineRegistry::ValidateName("").ok());
  EXPECT_FALSE(EngineRegistry::ValidateName("has space").ok());
  EXPECT_FALSE(EngineRegistry::ValidateName("a/b").ok());
  EXPECT_FALSE(EngineRegistry::ValidateName("-leading").ok());
  EXPECT_FALSE(EngineRegistry::ValidateName("_leading").ok());
  EXPECT_FALSE(EngineRegistry::ValidateName(std::string(65, 'a')).ok());
  EXPECT_TRUE(EngineRegistry::ValidateName(std::string(64, 'a')).ok());
}

TEST(EngineRegistryTest, CreateGetDeleteLifecycle) {
  EngineRegistry registry;
  EXPECT_EQ(registry.size(), 0u);
  auto created = registry.Create("alpha");
  ASSERT_TRUE(created.ok());
  EXPECT_EQ((*created)->version(), 0u);

  // Get returns the same engine; a write through one handle is visible
  // through the other.
  auto got = registry.Get("alpha");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(created->get(), got->get());
  ASSERT_TRUE((*created)->LoadGraphText("a p b [1,2] 0.9 .").ok());
  EXPECT_EQ((*got)->version(), 1u);

  // Duplicate create fails and leaves the original untouched.
  auto dup = registry.Create("alpha");
  ASSERT_FALSE(dup.ok());
  EXPECT_EQ(dup.status().code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(registry.Get("alpha").value()->version(), 1u);

  EXPECT_EQ(registry.Get("ghost").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(registry.Delete("ghost").code(), StatusCode::kNotFound);
  EXPECT_TRUE(registry.Delete("alpha").ok());
  EXPECT_EQ(registry.Get("alpha").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(registry.size(), 0u);

  // The name is reusable, and the new engine starts pristine.
  auto recreated = registry.Create("alpha");
  ASSERT_TRUE(recreated.ok());
  EXPECT_EQ((*recreated)->version(), 0u);
}

TEST(EngineRegistryTest, ListIsSortedWithPerKbSnapshots) {
  EngineRegistry registry;
  ASSERT_TRUE(registry.Create("zeta").ok());
  ASSERT_TRUE(registry.Create("alpha").ok());
  ASSERT_TRUE(registry.Create("mid").ok());
  ASSERT_TRUE(
      registry.Get("mid").value()->LoadGraphText("a p b [1,2] 0.9 .").ok());
  auto list = registry.List();
  ASSERT_EQ(list.size(), 3u);
  EXPECT_EQ(list[0].name, "alpha");
  EXPECT_EQ(list[1].name, "mid");
  EXPECT_EQ(list[2].name, "zeta");
  EXPECT_EQ(list[0].snapshot->version, 0u);
  EXPECT_EQ(list[1].snapshot->version, 1u);
  EXPECT_TRUE(list[1].snapshot->has_graph());
}

TEST(EngineRegistryTest, DeleteRetiresEngineForListeners) {
  EngineRegistry registry;
  auto engine = registry.Create("watched").value();
  std::atomic<int> closes{0};
  engine->AddPublishListener(
      [&closes](std::shared_ptr<const Snapshot> snap) {
        if (snap == nullptr) ++closes;
      });
  ASSERT_TRUE(registry.Delete("watched").ok());
  EXPECT_EQ(closes.load(), 1);
  // Late subscribers to the retired engine get the close signal inline.
  engine->AddPublishListener(
      [&closes](std::shared_ptr<const Snapshot> snap) {
        if (snap == nullptr) ++closes;
      });
  EXPECT_EQ(closes.load(), 2);
}

TEST(EngineRegistryTest, ConcurrentCreateDeleteOfOneName) {
  EngineRegistry registry;
  constexpr int kThreads = 4;
  constexpr int kRounds = 50;
  std::atomic<int> creates{0};
  std::atomic<int> deletes{0};
  std::atomic<int> anomalies{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kRounds; ++i) {
        if ((t + i) % 2 == 0) {
          auto created = registry.Create("contested");
          if (created.ok()) {
            ++creates;
          } else if (created.status().code() != StatusCode::kAlreadyExists) {
            ++anomalies;  // the only legal failure is AlreadyExists
          }
        } else {
          Status deleted = registry.Delete("contested");
          if (deleted.ok()) {
            ++deletes;
          } else if (deleted.code() != StatusCode::kNotFound) {
            ++anomalies;
          }
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(anomalies.load(), 0);
  // Conservation: every successful delete consumed a successful create,
  // and the end state accounts for the difference exactly.
  EXPECT_EQ(creates.load() - deletes.load(),
            registry.Get("contested").ok() ? 1 : 0);
}

TEST(EngineRegistryTest, DurableCreateDeleteRaceKeepsSurvivorDurable) {
  const std::string data_dir = ::testing::TempDir() + "/registry_race";
  ASSERT_TRUE(storage::RemoveDirRecursive(data_dir).ok());
  EngineRegistry::Options options;
  options.data_dir = data_dir;
  {
    EngineRegistry registry(options);
    // Race Create against Delete of one name over durable storage. The
    // per-name lifecycle serialization must prevent a Create from
    // attaching a WAL inside a directory a Delete is still unlinking —
    // otherwise the survivor's writes land in unlinked files and vanish
    // on the reboot below.
    std::thread deleter([&] {
      for (int i = 0; i < 25; ++i) {
        Status deleted = registry.Delete("contested");
        ASSERT_TRUE(deleted.ok() ||
                    deleted.code() == StatusCode::kNotFound);
      }
    });
    for (int i = 0; i < 25; ++i) {
      auto created = registry.Create("contested");
      ASSERT_TRUE(created.ok() ||
                  created.status().code() == StatusCode::kAlreadyExists);
    }
    deleter.join();
    auto survivor = registry.Get("contested");
    if (!survivor.ok()) {
      auto recreated = registry.Create("contested");
      ASSERT_TRUE(recreated.ok());
      survivor = recreated;
    }
    ASSERT_TRUE((*survivor)->LoadGraphText("a p b [1,2] 0.9 .").ok());
  }
  // The acknowledged write recovers on reboot: its storage directory was
  // attached only after any concurrent Delete fully finished unlinking.
  EngineRegistry registry(options);
  auto recovered = registry.RecoverKbs();
  ASSERT_TRUE(recovered.ok());
  auto engine = registry.Get("contested");
  ASSERT_TRUE(engine.ok());
  EXPECT_EQ((*engine)->version(), 1u);
  EXPECT_EQ((*engine)->snapshot()->graph->NumFacts(), 1u);
  ASSERT_TRUE(storage::RemoveDirRecursive(data_dir).ok());
}

TEST(EngineRegistryTest, ReadsRacingDeleteSeeNotFoundOrConsistentState) {
  EngineRegistry registry;
  {
    auto seeded = registry.Create("kb");
    ASSERT_TRUE(seeded.ok());
    ASSERT_TRUE((*seeded)
                    ->LoadGraphText("a p b [1,2] 0.9 .\na p c [3,4] 0.8 .")
                    .ok());
  }
  std::atomic<bool> stop{false};
  std::atomic<int> anomalies{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&] {
      while (!stop.load()) {
        auto engine = registry.Get("kb");
        if (!engine.ok()) continue;  // NotFound: the legal racing outcome
        // A handle obtained before the delete stays fully usable: the
        // snapshot is immutable and internally consistent.
        auto snap = (*engine)->snapshot();
        if (snap == nullptr) {
          ++anomalies;
          continue;
        }
        if (snap->has_graph()) {
          if (snap->graph->NumLiveFacts() > snap->graph->NumFacts() ||
              snap->stats == nullptr) {
            ++anomalies;
          }
        } else if (snap->version != 0) {
          // Pristine recreations are the only graph-less state here.
          ++anomalies;
        }
      }
    });
  }
  for (int round = 0; round < 25; ++round) {
    ASSERT_TRUE(registry.Delete("kb").ok());
    auto recreated = registry.Create("kb");
    ASSERT_TRUE(recreated.ok());
    ASSERT_TRUE((*recreated)
                    ->LoadGraphText("a p b [1,2] 0.9 .\na p c [3,4] 0.8 .")
                    .ok());
  }
  stop.store(true);
  for (std::thread& t : readers) t.join();
  EXPECT_EQ(anomalies.load(), 0);
}

TEST(EngineRegistryTest, SharedPoolIsOnePerRegistry) {
  EngineRegistry::Options options;
  options.num_threads = 8;
  EngineRegistry registry(options);
  ASSERT_NE(registry.pool(), nullptr);
  EXPECT_EQ(registry.pool()->num_threads(), 8);
  // Small requests are floored: a pool that cannot serve a streaming
  // subscriber and the write it watches simultaneously would deadlock
  // the subscription workflow.
  EXPECT_GE(EngineRegistry(EngineRegistry::Options()).pool()->num_threads(),
            6);
  // Creating tenants does not spawn per-tenant pools: the handle stays
  // the same object no matter how many engines exist.
  auto before = registry.pool().get();
  ASSERT_TRUE(registry.Create("a").ok());
  ASSERT_TRUE(registry.Create("b").ok());
  EXPECT_EQ(registry.pool().get(), before);
}

}  // namespace
}  // namespace api
}  // namespace tecore
