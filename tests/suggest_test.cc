#include <gtest/gtest.h>

#include "core/conflict.h"
#include "core/session.h"
#include "core/suggest.h"
#include "datagen/generators.h"
#include "rules/library.h"
#include "rules/parser.h"
#include "util/random.h"

namespace tecore {
namespace core {
namespace {

/// Finds a suggestion whose rule name starts with `prefix`; nullptr if none.
const Suggestion* FindByPrefix(const std::vector<Suggestion>& suggestions,
                               const std::string& prefix) {
  for (const Suggestion& s : suggestions) {
    if (s.rule.name.rfind(prefix, 0) == 0) return &s;
  }
  return nullptr;
}

TEST(SuggestConstraints, FindsDisjointnessOnCleanCareers) {
  datagen::FootballDbOptions gen;
  gen.num_players = 500;
  gen.noise_rate = 0.0;
  datagen::GeneratedKg kg = datagen::GenerateFootballDb(gen);
  auto suggestions = SuggestConstraints(kg.graph);
  const Suggestion* disjoint = FindByPrefix(suggestions, "disjoint_playsFor");
  ASSERT_NE(disjoint, nullptr);
  EXPECT_EQ(disjoint->violation_rate, 0.0);  // clean data: no overlaps
  EXPECT_GT(disjoint->support, 20u);
  EXPECT_TRUE(disjoint->rule.IsConstraint());
}

TEST(SuggestConstraints, FindsBirthBeforePlaying) {
  datagen::FootballDbOptions gen;
  gen.num_players = 400;
  gen.noise_rate = 0.0;
  datagen::GeneratedKg kg = datagen::GenerateFootballDb(gen);
  auto suggestions = SuggestConstraints(kg.graph);
  const Suggestion* precede =
      FindByPrefix(suggestions, "precede_birthDate_playsFor");
  ASSERT_NE(precede, nullptr);
  EXPECT_EQ(precede->violation_rate, 0.0);
  // The reverse direction must NOT be suggested.
  EXPECT_EQ(FindByPrefix(suggestions, "precede_playsFor_birthDate"), nullptr);
}

TEST(SuggestConstraints, ToleratesModerateNoise) {
  datagen::FootballDbOptions gen;
  gen.num_players = 500;
  gen.noise_rate = 0.4;
  datagen::GeneratedKg kg = datagen::GenerateFootballDb(gen);
  auto suggestions = SuggestConstraints(kg.graph);
  const Suggestion* disjoint = FindByPrefix(suggestions, "disjoint_playsFor");
  ASSERT_NE(disjoint, nullptr);
  EXPECT_GT(disjoint->violation_rate, 0.0);  // injected overlaps
  EXPECT_LT(disjoint->violation_rate, 0.25);
}

TEST(SuggestConstraints, SilentOnChaoticPredicate) {
  // Random overlapping memberships with many objects: no constraint holds.
  rdf::TemporalGraph graph;
  Rng rng(7);
  for (int s = 0; s < 40; ++s) {
    for (int i = 0; i < 4; ++i) {
      int64_t b = rng.UniformRange(2000, 2004);  // heavy overlap
      ASSERT_TRUE(graph
                      .AddQuad("s" + std::to_string(s), "tag",
                               "o" + std::to_string(rng.UniformRange(0, 9)),
                               temporal::Interval(b, b + 5), 0.9)
                      .ok());
    }
  }
  auto suggestions = SuggestConstraints(graph);
  EXPECT_EQ(FindByPrefix(suggestions, "disjoint_tag"), nullptr);
  EXPECT_EQ(FindByPrefix(suggestions, "functional_tag"), nullptr);
}

TEST(SuggestConstraints, RespectsMinSupport) {
  rdf::TemporalGraph graph;
  // Only 3 disjoint same-subject pairs: under any sane support threshold.
  ASSERT_TRUE(graph.AddQuad("a", "p", "x", temporal::Interval(0, 1), 0.9).ok());
  ASSERT_TRUE(graph.AddQuad("a", "p", "y", temporal::Interval(3, 4), 0.9).ok());
  ASSERT_TRUE(graph.AddQuad("a", "p", "z", temporal::Interval(6, 7), 0.9).ok());
  SuggestOptions options;
  options.min_support = 20;
  EXPECT_TRUE(SuggestConstraints(graph, options).empty());
  // Lowering the threshold surfaces it.
  options.min_support = 2;
  EXPECT_NE(FindByPrefix(SuggestConstraints(graph, options), "disjoint_p"),
            nullptr);
}

TEST(SuggestConstraints, SuggestedRulesDetectInjectedNoise) {
  // End-to-end: mine constraints on noisy data, then use them to detect.
  datagen::FootballDbOptions gen;
  gen.num_players = 400;
  gen.noise_rate = 1.0;
  datagen::GeneratedKg kg = datagen::GenerateFootballDb(gen);
  auto suggestions = SuggestConstraints(kg.graph);
  ASSERT_FALSE(suggestions.empty());
  rules::RuleSet mined;
  for (const Suggestion& s : suggestions) mined.rules.push_back(s.rule);
  ConflictDetector detector(&kg.graph, mined);
  auto report = detector.Detect();
  ASSERT_TRUE(report.ok());
  EXPECT_GT(report->NumConflicts(), 0u);
}

TEST(Compatibility, ConsistentPaperConstraints) {
  auto constraints = rules::PaperConstraints();
  ASSERT_TRUE(constraints.ok());
  CompatibilityReport report =
      AnalyzeConstraintCompatibility(*constraints);
  EXPECT_TRUE(report.possibly_consistent) << report.problems.front();
}

TEST(Compatibility, DetectsDirectContradiction) {
  auto rules = rules::ParseRules(R"(
    a_before_b: quad(x, birthDate, y, t) & quad(x, deathDate, z, t')
        -> before(t, t') .
    b_before_a: quad(x, birthDate, y, t) & quad(x, deathDate, z, t')
        -> after(t, t') .
  )");
  ASSERT_TRUE(rules.ok());
  CompatibilityReport report = AnalyzeConstraintCompatibility(*rules);
  EXPECT_FALSE(report.possibly_consistent);
  EXPECT_FALSE(report.problems.empty());
}

TEST(Compatibility, DetectsCyclicBeforeChain) {
  auto rules = rules::ParseRules(R"(
    r1: quad(x, pa, y, t) & quad(x, pb, z, t') -> before(t, t') .
    r2: quad(x, pb, y, t) & quad(x, pc, z, t') -> before(t, t') .
    r3: quad(x, pc, y, t) & quad(x, pa, z, t') -> before(t, t') .
  )");
  ASSERT_TRUE(rules.ok());
  CompatibilityReport report = AnalyzeConstraintCompatibility(*rules);
  EXPECT_FALSE(report.possibly_consistent);
}

TEST(Compatibility, HandlesSwappedHeadArguments) {
  // Head written as allen(t', t): converse must be applied. These two say
  // the same thing, so the set stays consistent.
  auto rules = rules::ParseRules(R"(
    r1: quad(x, pa, y, t) & quad(x, pb, z, t') -> before(t, t') .
    r2: quad(x, pa, y, t) & quad(x, pb, z, t') -> after(t', t) .
  )");
  ASSERT_TRUE(rules.ok());
  CompatibilityReport report = AnalyzeConstraintCompatibility(*rules);
  EXPECT_TRUE(report.possibly_consistent)
      << (report.problems.empty() ? "" : report.problems.front());
}

TEST(Compatibility, IgnoresNonAbstractableRules) {
  // Inference rules, same-predicate constraints, and arithmetic heads are
  // out of scope for the predicate-level analysis.
  auto rules = rules::ParseRules(R"(
    f1: quad(x, playsFor, y, t) -> quad(x, worksFor, y, t) w = 2.5 .
    c2: quad(x, coach, y, t) & quad(x, coach, z, t') & y != z
        -> disjoint(t, t') .
    num: quad(x, pa, y, t) & quad(x, pb, z, t') -> begin(t) < begin(t') .
  )");
  ASSERT_TRUE(rules.ok());
  CompatibilityReport report = AnalyzeConstraintCompatibility(*rules);
  EXPECT_TRUE(report.possibly_consistent);
}

TEST(SessionIntegration, SuggestAndAnalyze) {
  Session session;
  EXPECT_FALSE(session.SuggestConstraints().ok());  // no graph
  datagen::FootballDbOptions gen;
  gen.num_players = 300;
  gen.noise_rate = 0.0;
  session.SetGraph(std::move(datagen::GenerateFootballDb(gen).graph));
  auto suggestions = session.SuggestConstraints();
  ASSERT_TRUE(suggestions.ok());
  EXPECT_FALSE(suggestions->empty());
  auto added = session.AddRulesText(suggestions->front().rule.ToString());
  ASSERT_TRUE(added.ok()) << added.status().ToString();
  EXPECT_TRUE(session.AnalyzeRuleCompatibility().possibly_consistent);
}

}  // namespace
}  // namespace core
}  // namespace tecore
