#include <gtest/gtest.h>

#include "core/resolver.h"
#include "datagen/generators.h"
#include "rules/library.h"
#include "rdf/temporal_ops.h"
#include "temporal/interval_set.h"
#include "util/random.h"

namespace tecore {
namespace rdf {
namespace {

using temporal::Interval;

TEST(Coalesce, MergesOverlappingAndAdjacentSpells) {
  TemporalGraph graph;
  ASSERT_TRUE(graph.AddQuad("CR", "coach", "Chelsea", Interval(2000, 2002), 0.8)
                  .ok());
  ASSERT_TRUE(graph.AddQuad("CR", "coach", "Chelsea", Interval(2002, 2004), 0.9)
                  .ok());
  ASSERT_TRUE(graph.AddQuad("CR", "coach", "Chelsea", Interval(2005, 2006), 0.7)
                  .ok());  // adjacent in discrete time
  ASSERT_TRUE(graph.AddQuad("CR", "coach", "Chelsea", Interval(2010, 2011), 0.6)
                  .ok());  // separate spell
  size_t merged = 0;
  TemporalGraph out = Coalesce(graph, CoalesceConfidence::kMax, &merged);
  EXPECT_EQ(out.NumFacts(), 2u);
  EXPECT_EQ(merged, 2u);
  EXPECT_EQ(out.fact(0).interval, Interval(2000, 2006));
  EXPECT_DOUBLE_EQ(out.fact(0).confidence, 0.9);  // max policy
  EXPECT_EQ(out.fact(1).interval, Interval(2010, 2011));
}

TEST(Coalesce, NoisyOrBoostsConfidence) {
  TemporalGraph graph;
  ASSERT_TRUE(graph.AddQuad("a", "p", "b", Interval(0, 5), 0.5).ok());
  ASSERT_TRUE(graph.AddQuad("a", "p", "b", Interval(3, 8), 0.5).ok());
  TemporalGraph out = Coalesce(graph, CoalesceConfidence::kNoisyOr);
  ASSERT_EQ(out.NumFacts(), 1u);
  EXPECT_DOUBLE_EQ(out.fact(0).confidence, 0.75);  // 1 - 0.5*0.5
}

TEST(Coalesce, DistinctTriplesStaySeparate) {
  TemporalGraph graph;
  ASSERT_TRUE(graph.AddQuad("a", "p", "b", Interval(0, 5), 0.9).ok());
  ASSERT_TRUE(graph.AddQuad("a", "p", "c", Interval(0, 5), 0.9).ok());
  ASSERT_TRUE(graph.AddQuad("a", "q", "b", Interval(0, 5), 0.9).ok());
  TemporalGraph out = Coalesce(graph);
  EXPECT_EQ(out.NumFacts(), 3u);
}

TEST(Coalesce, CoversSameTimePointsProperty) {
  // Property: per triple, the coalesced graph covers exactly the same
  // time points as the input (IntervalSet as the reference model).
  Rng rng(5150);
  for (int trial = 0; trial < 30; ++trial) {
    TemporalGraph graph;
    const int spells = 2 + static_cast<int>(rng.Uniform(10));
    temporal::IntervalSet model;
    for (int i = 0; i < spells; ++i) {
      int64_t b = rng.UniformRange(0, 60);
      Interval iv(b, b + rng.UniformRange(0, 12));
      model.Add(iv);
      ASSERT_TRUE(graph.AddQuad("s", "p", "o", iv, 0.9).ok());
    }
    TemporalGraph out = Coalesce(graph);
    temporal::IntervalSet coalesced;
    for (const TemporalFact& f : out.facts()) coalesced.Add(f.interval);
    EXPECT_EQ(coalesced, model);
    // Canonical form: exactly as many facts as maximal intervals.
    EXPECT_EQ(out.NumFacts(), model.Size());
  }
}

TEST(DiffGraphs, DetectsRemovalsAdditionsAndRescores) {
  TemporalGraph before;
  ASSERT_TRUE(before.AddQuad("a", "p", "b", Interval(0, 5), 0.9).ok());
  ASSERT_TRUE(before.AddQuad("a", "p", "c", Interval(1, 4), 0.6).ok());
  TemporalGraph after;
  ASSERT_TRUE(after.AddQuad("a", "p", "b", Interval(0, 5), 0.95).ok());
  ASSERT_TRUE(after.AddQuad("a", "q", "d", Interval(2, 3), 0.8).ok());
  GraphDiff diff = DiffGraphs(before, after);
  ASSERT_EQ(diff.removed.size(), 1u);   // (a,p,c)
  ASSERT_EQ(diff.added.size(), 1u);     // (a,q,d)
  ASSERT_EQ(diff.rescored.size(), 1u);  // (a,p,b) 0.9 -> 0.95
  EXPECT_DOUBLE_EQ(diff.rescored[0].first.confidence, 0.9);
  EXPECT_DOUBLE_EQ(diff.rescored[0].second.confidence, 0.95);
}

TEST(DiffGraphs, RepairDiffMatchesResolverBookkeeping) {
  // End-to-end: diff(input, repaired) must equal the resolver's
  // removed/derived lists.
  rdf::TemporalGraph graph = datagen::RunningExampleGraph(false);
  auto constraints = rules::PaperConstraints();
  ASSERT_TRUE(constraints.ok());
  core::ResolveOptions options;
  core::Resolver resolver(&graph, *constraints, options);
  auto result = resolver.Run();
  ASSERT_TRUE(result.ok());
  GraphDiff diff = DiffGraphs(graph, result->consistent_graph);
  EXPECT_EQ(diff.removed.size(), result->removed_facts.size());
  EXPECT_EQ(diff.added.size(), result->derived_facts.size());
}

TEST(TemporalCoverage, ComputesCoveredDurations) {
  TemporalGraph graph;
  ASSERT_TRUE(graph.AddQuad("a", "p", "b", Interval(0, 4), 0.9).ok());
  ASSERT_TRUE(graph.AddQuad("c", "p", "d", Interval(3, 6), 0.9).ok());
  ASSERT_TRUE(graph.AddQuad("a", "q", "b", Interval(10, 10), 0.9).ok());
  auto coverage = TemporalCoverage(graph);
  ASSERT_EQ(coverage.size(), 2u);
  // p covers [0,6] = 7 points, q covers 1 point.
  EXPECT_EQ(coverage[0].second, 7);
  EXPECT_EQ(coverage[1].second, 1);
  EXPECT_EQ(graph.dict().Lookup(coverage[0].first).lexical(), "p");
}

}  // namespace
}  // namespace rdf
}  // namespace tecore
