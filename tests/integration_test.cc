#include <gtest/gtest.h>

#include <unordered_set>

#include "core/conflict.h"
#include "core/resolver.h"
#include "datagen/generators.h"
#include "rules/library.h"

namespace tecore {
namespace {

/// End-to-end checks on a small synthetic FootballDB: generate noisy data,
/// detect conflicts, repair with both solvers, and score the repair
/// against the generator's ground truth.

struct RepairQuality {
  double precision = 0.0;  // removed facts that were indeed noise
  double recall = 0.0;     // noise facts that were removed
};

RepairQuality ScoreRemoval(const datagen::GeneratedKg& kg,
                           const std::vector<rdf::FactId>& removed) {
  size_t true_positives = 0;
  for (rdf::FactId id : removed) {
    if (kg.is_noise[id]) ++true_positives;
  }
  RepairQuality q;
  if (!removed.empty()) {
    q.precision = static_cast<double>(true_positives) /
                  static_cast<double>(removed.size());
  }
  if (kg.num_noise > 0) {
    q.recall = static_cast<double>(true_positives) /
               static_cast<double>(kg.num_noise);
  }
  return q;
}

class FootballEndToEnd : public ::testing::TestWithParam<rules::SolverKind> {
 protected:
  static datagen::GeneratedKg MakeKg() {
    datagen::FootballDbOptions options;
    options.num_players = 250;  // small but representative
    options.noise_rate = 1.0;
    return datagen::GenerateFootballDb(options);
  }
};

TEST_P(FootballEndToEnd, RepairsNoisyKgFeasibly) {
  datagen::GeneratedKg kg = MakeKg();
  auto constraints = rules::FootballConstraints();
  ASSERT_TRUE(constraints.ok());

  core::ResolveOptions options;
  options.solver = GetParam();
  core::Resolver resolver(&kg.graph, *constraints, options);
  auto result = resolver.Run();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->feasible) << result->StatsPanel();

  // The output graph has no remaining conflicts.
  core::ConflictDetector recheck(&result->consistent_graph, *constraints);
  auto report = recheck.Detect();
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->NumConflicts(), 0u) << result->StatsPanel();

  // Removal quality: the MAP repair should mostly remove injected noise
  // (noise has lower confidence on average).
  RepairQuality quality = ScoreRemoval(kg, result->removed_facts);
  EXPECT_GT(quality.precision, 0.85) << result->StatsPanel();
  EXPECT_GT(quality.recall, 0.5);
  EXPECT_GT(result->removed_facts.size(), 0u);
  EXPECT_LT(result->removed_facts.size(), kg.graph.NumFacts() / 2);
}

INSTANTIATE_TEST_SUITE_P(BothSolvers, FootballEndToEnd,
                         ::testing::Values(rules::SolverKind::kMln,
                                           rules::SolverKind::kPsl),
                         [](const auto& info) {
                           return info.param == rules::SolverKind::kMln
                                      ? "Mln"
                                      : "Psl";
                         });

TEST(FootballConflicts, DetectionFindsInjectedNoise) {
  datagen::FootballDbOptions options;
  options.num_players = 400;
  options.noise_rate = 1.0;
  datagen::GeneratedKg kg = datagen::GenerateFootballDb(options);
  auto constraints = rules::FootballConstraints();
  ASSERT_TRUE(constraints.ok());
  core::ConflictDetector detector(&kg.graph, *constraints);
  auto report = detector.Detect();
  ASSERT_TRUE(report.ok());
  EXPECT_GT(report->NumConflicts(), 0u);
  // Most conflicting facts involve at least one injected-noise fact.
  size_t with_noise = 0;
  for (const core::Conflict& conflict : report->conflicts) {
    for (rdf::FactId id : conflict.facts) {
      if (kg.is_noise[id]) {
        ++with_noise;
        break;
      }
    }
  }
  EXPECT_GT(static_cast<double>(with_noise) /
                static_cast<double>(report->NumConflicts()),
            0.95);
}

TEST(FootballConflicts, CleanDataHasNone) {
  datagen::FootballDbOptions options;
  options.num_players = 400;
  options.noise_rate = 0.0;
  datagen::GeneratedKg kg = datagen::GenerateFootballDb(options);
  auto constraints = rules::FootballConstraints();
  ASSERT_TRUE(constraints.ok());
  core::ConflictDetector detector(&kg.graph, *constraints);
  auto report = detector.Detect();
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->NumConflicts(), 0u);
}

TEST(WikidataConflicts, ConflictShareTracksFig8) {
  // Scaled-down version of the Fig. 8 experiment: the default noise rate
  // is calibrated so ~8% of facts are conflicting.
  datagen::WikidataOptions options;
  options.target_facts = 30'000;
  datagen::GeneratedKg kg = datagen::GenerateWikidata(options);
  auto constraints = rules::WikidataConstraints();
  ASSERT_TRUE(constraints.ok());
  core::ConflictDetector detector(&kg.graph, *constraints);
  auto report = detector.Detect();
  ASSERT_TRUE(report.ok());
  double share = static_cast<double>(report->NumConflictingFacts()) /
                 static_cast<double>(kg.graph.NumFacts());
  EXPECT_GT(share, 0.04) << report->StatsPanel(*constraints);
  EXPECT_LT(share, 0.13) << report->StatsPanel(*constraints);
}

TEST(MixedPipeline, InferenceRulesExpandWhileConstraintsRepair) {
  datagen::FootballDbOptions options;
  options.num_players = 120;
  options.noise_rate = 0.5;
  datagen::GeneratedKg kg = datagen::GenerateFootballDb(options);
  auto rules = rules::FootballConstraints();
  ASSERT_TRUE(rules.ok());
  auto inclusion = rules::MakeInclusion("playsFor", "worksFor", 2.5);
  ASSERT_TRUE(inclusion.ok());
  rules->rules.push_back(*inclusion);

  core::ResolveOptions resolve_options;
  core::Resolver resolver(&kg.graph, *rules, resolve_options);
  auto result = resolver.Run();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->feasible);
  // Every kept playsFor fact spawns a derived worksFor fact.
  size_t kept_plays_for = 0;
  for (rdf::FactId id : result->kept_facts) {
    const auto& fact = kg.graph.fact(id);
    if (kg.graph.dict().Lookup(fact.predicate).lexical() == "playsFor") {
      ++kept_plays_for;
    }
  }
  EXPECT_EQ(result->derived_facts.size(), kept_plays_for);
}

}  // namespace
}  // namespace tecore
