#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "util/csv.h"
#include "util/exact_sum.h"
#include "util/random.h"
#include "util/status.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace tecore {
namespace {

TEST(Status, OkAndErrors) {
  Status ok = Status::OK();
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.ToString(), "OK");

  Status parse = Status::ParseError("bad token");
  EXPECT_FALSE(parse.ok());
  EXPECT_EQ(parse.code(), StatusCode::kParseError);
  EXPECT_EQ(parse.ToString(), "ParseError: bad token");
  EXPECT_EQ(parse.message(), "bad token");
}

TEST(Status, EqualityAndCodeNames) {
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_STREQ(StatusCodeName(StatusCode::kUnsupported), "Unsupported");
  EXPECT_STREQ(StatusCodeName(StatusCode::kIoError), "IoError");
}

TEST(Result, ValueAndError) {
  Result<int> value(42);
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(*value, 42);
  EXPECT_EQ(value.value_or(7), 42);

  Result<int> error(Status::NotFound("nope"));
  EXPECT_FALSE(error.ok());
  EXPECT_EQ(error.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(error.value_or(7), 7);
}

Result<int> HalfOf(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> QuarterOf(int x) {
  TECORE_ASSIGN_OR_RETURN(half, HalfOf(x));
  return HalfOf(half);
}

TEST(Result, MacroPropagation) {
  auto good = QuarterOf(8);
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(*good, 2);
  EXPECT_FALSE(QuarterOf(6).ok());  // 6/2=3 is odd
  EXPECT_FALSE(QuarterOf(7).ok());
}

TEST(StringUtil, SplitAndJoin) {
  EXPECT_EQ(Split("a,b,,c", ','),
            (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(SplitWhitespace("  a \t b\nc  "),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
}

TEST(StringUtil, TrimAndCase) {
  EXPECT_EQ(Trim("  x y  "), "x y");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim(" \t\n "), "");
  EXPECT_EQ(ToLower("MiXeD"), "mixed");
  EXPECT_TRUE(StartsWith("playsFor", "plays"));
  EXPECT_FALSE(StartsWith("p", "plays"));
  EXPECT_TRUE(EndsWith("file.tq", ".tq"));
}

TEST(StringUtil, ParseNumbers) {
  int64_t i = 0;
  EXPECT_TRUE(ParseInt64("-42", &i));
  EXPECT_EQ(i, -42);
  EXPECT_FALSE(ParseInt64("42x", &i));
  EXPECT_FALSE(ParseInt64("", &i));
  double d = 0;
  EXPECT_TRUE(ParseDouble("2.5", &d));
  EXPECT_DOUBLE_EQ(d, 2.5);
  EXPECT_FALSE(ParseDouble("2.5.6", &d));
}

TEST(StringUtil, PrintfAndCommas) {
  EXPECT_EQ(StringPrintf("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(FormatWithCommas(243157), "243,157");
  EXPECT_EQ(FormatWithCommas(19734), "19,734");
  EXPECT_EQ(FormatWithCommas(12), "12");
  EXPECT_EQ(FormatWithCommas(-1234567), "-1,234,567");
  EXPECT_EQ(FormatWithCommas(0), "0");
}

TEST(Rng, DeterministicForSeed) {
  Rng a(123), b(123), c(124);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
  // Different seed diverges (overwhelmingly likely).
  bool diverged = false;
  Rng a2(123);
  for (int i = 0; i < 100; ++i) {
    if (a2.Next() != c.Next()) diverged = true;
  }
  EXPECT_TRUE(diverged);
}

TEST(Rng, UniformRespectsBounds) {
  Rng rng(5);
  std::set<uint64_t> seen;
  for (int i = 0; i < 3000; ++i) {
    uint64_t v = rng.Uniform(10);
    EXPECT_LT(v, 10u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 10u);  // all values hit
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.UniformRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
  }
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(9);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(17);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7};
  std::vector<int> orig = v;
  rng.Shuffle(&v);
  std::multiset<int> a(v.begin(), v.end()), b(orig.begin(), orig.end());
  EXPECT_EQ(a, b);
}

TEST(Table, CsvEscaping) {
  Table t({"name", "value"});
  t.AddRow({"plain", "1"});
  t.AddRow({"with,comma", "2"});
  t.AddRow({"with\"quote", "3"});
  std::string csv = t.ToCsv();
  EXPECT_NE(csv.find("\"with,comma\""), std::string::npos);
  EXPECT_NE(csv.find("\"with\"\"quote\""), std::string::npos);
  EXPECT_EQ(t.NumRows(), 3u);
}

TEST(Table, AsciiAlignment) {
  Table t({"a", "long_header"});
  t.AddRow({"xxxxxx", "1"});
  std::string ascii = t.ToAscii();
  // Header rule present and every line same width.
  EXPECT_NE(ascii.find("+--"), std::string::npos);
  size_t first_nl = ascii.find('\n');
  std::string first_line = ascii.substr(0, first_nl);
  for (size_t pos = 0; pos < ascii.size();) {
    size_t nl = ascii.find('\n', pos);
    if (nl == std::string::npos) break;
    EXPECT_EQ(nl - pos, first_line.size());
    pos = nl + 1;
  }
}

TEST(Timer, MeasuresElapsedTime) {
  Timer timer;
  volatile double sink = 0;
  for (int i = 0; i < 100000; ++i) sink += i;
  EXPECT_GE(timer.ElapsedMicros(), 0.0);
  EXPECT_GE(timer.ElapsedMillis(), 0.0);
  double before = timer.ElapsedSeconds();
  timer.Reset();
  EXPECT_LE(timer.ElapsedSeconds(), before + 1.0);
}

TEST(ExactSum, OrderIndependentAndBitExact) {
  // The same multiset of values, accumulated in different orders with
  // different add/remove interleavings, must land on identical state —
  // the property that makes incremental statistics bit-identical to
  // from-scratch ones.
  Rng rng(42);
  std::vector<double> values;
  for (int i = 0; i < 500; ++i) {
    values.push_back((rng.NextDouble() - 0.5) * 1e12);
    values.push_back(rng.NextDouble() * 1e-300);  // tiny magnitudes too
  }
  util::ExactSum forward;
  for (double v : values) forward.Add(v);
  util::ExactSum backward;
  for (size_t i = values.size(); i-- > 0;) backward.Add(values[i]);
  EXPECT_TRUE(forward == backward);
  EXPECT_EQ(forward.ToDouble(), backward.ToDouble());  // bitwise

  // Adding then subtracting extra values is a perfect no-op.
  util::ExactSum churn = forward;
  std::vector<double> extra;
  for (int i = 0; i < 100; ++i) extra.push_back(rng.NextGaussian(0.0, 1e6));
  for (double v : extra) churn.Add(v);
  rng.Shuffle(&extra);
  for (double v : extra) churn.Subtract(v);
  EXPECT_TRUE(churn == forward);
}

TEST(ExactSum, NegativeTotalsAndCancellation) {
  util::ExactSum sum;
  sum.Add(1e308);
  sum.Add(-1e308);
  EXPECT_EQ(sum.ToDouble(), 0.0);
  sum.Subtract(3.5);
  EXPECT_EQ(sum.ToDouble(), -3.5);
  // Catastrophic cancellation that naive running sums get wrong: the
  // small term survives the huge transient exactly.
  util::ExactSum cancel;
  cancel.Add(1e16);
  cancel.Add(1.0);
  cancel.Subtract(1e16);
  EXPECT_EQ(cancel.ToDouble(), 1.0);
  // Subnormals accumulate exactly as well.
  util::ExactSum tiny;
  const double subnormal = 4.9406564584124654e-324;  // 2^-1074
  for (int i = 0; i < 8; ++i) tiny.Add(subnormal);
  EXPECT_EQ(tiny.ToDouble(), 8 * subnormal);
}

}  // namespace
}  // namespace tecore
