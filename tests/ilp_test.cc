#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "ilp/branch_bound.h"
#include "ilp/lp.h"
#include "util/random.h"

namespace tecore {
namespace ilp {
namespace {

TEST(Simplex, SolvesTextbookLp) {
  // max 3x + 2y  s.t. x + y <= 4, x + 3y <= 6, x,y in [0, 10].
  // Optimum at (4, 0) with objective 12.
  LpProblem lp;
  lp.AddVar(3.0, 10.0);
  lp.AddVar(2.0, 10.0);
  lp.AddRow({{{0, 1.0}, {1, 1.0}}, RowOp::kLe, 4.0});
  lp.AddRow({{{0, 1.0}, {1, 3.0}}, RowOp::kLe, 6.0});
  LpResult result = SimplexSolver().Solve(lp);
  ASSERT_EQ(result.status, LpStatus::kOptimal);
  EXPECT_NEAR(result.objective, 12.0, 1e-6);
  EXPECT_NEAR(result.x[0], 4.0, 1e-6);
  EXPECT_NEAR(result.x[1], 0.0, 1e-6);
}

TEST(Simplex, HandlesGeAndEqRows) {
  // max x + y  s.t. x + y = 1, x >= 0.25, bounds [0,1].
  LpProblem lp;
  lp.AddVar(1.0);
  lp.AddVar(1.0);
  lp.AddRow({{{0, 1.0}, {1, 1.0}}, RowOp::kEq, 1.0});
  lp.AddRow({{{0, 1.0}}, RowOp::kGe, 0.25});
  LpResult result = SimplexSolver().Solve(lp);
  ASSERT_EQ(result.status, LpStatus::kOptimal);
  EXPECT_NEAR(result.objective, 1.0, 1e-6);
  EXPECT_GE(result.x[0], 0.25 - 1e-9);
}

TEST(Simplex, DetectsInfeasible) {
  LpProblem lp;
  lp.AddVar(1.0);
  lp.AddRow({{{0, 1.0}}, RowOp::kGe, 2.0});  // x >= 2 but x <= 1
  LpResult result = SimplexSolver().Solve(lp);
  EXPECT_EQ(result.status, LpStatus::kInfeasible);
}

TEST(Simplex, NegativeRhsNormalization) {
  // -x <= -0.5  <=>  x >= 0.5.
  LpProblem lp;
  lp.AddVar(-1.0);  // minimize x
  lp.AddRow({{{0, -1.0}}, RowOp::kLe, -0.5});
  LpResult result = SimplexSolver().Solve(lp);
  ASSERT_EQ(result.status, LpStatus::kOptimal);
  EXPECT_NEAR(result.x[0], 0.5, 1e-6);
}

TEST(Simplex, BoundsAreRespected) {
  LpProblem lp;
  lp.AddVar(1.0, 0.7);
  LpResult result = SimplexSolver().Solve(lp);
  ASSERT_EQ(result.status, LpStatus::kOptimal);
  EXPECT_NEAR(result.x[0], 0.7, 1e-6);
}

/// Brute-force 0/1 reference.
double BruteForceIlp(const IlpProblem& problem, bool* feasible) {
  double best = -std::numeric_limits<double>::infinity();
  *feasible = false;
  for (uint64_t mask = 0; mask < (1ULL << problem.num_vars); ++mask) {
    std::vector<int> x(static_cast<size_t>(problem.num_vars));
    for (int v = 0; v < problem.num_vars; ++v) x[static_cast<size_t>(v)] = (mask >> v) & 1;
    bool ok = true;
    for (const LinearRow& row : problem.rows) {
      double lhs = 0;
      for (const auto& [v, c] : row.coefs) lhs += c * x[static_cast<size_t>(v)];
      if ((row.op == RowOp::kLe && lhs > row.rhs + 1e-9) ||
          (row.op == RowOp::kGe && lhs < row.rhs - 1e-9) ||
          (row.op == RowOp::kEq && std::abs(lhs - row.rhs) > 1e-9)) {
        ok = false;
        break;
      }
    }
    if (!ok) continue;
    *feasible = true;
    double obj = 0;
    for (int v = 0; v < problem.num_vars; ++v) {
      obj += problem.objective[static_cast<size_t>(v)] * x[static_cast<size_t>(v)];
    }
    best = std::max(best, obj);
  }
  return best;
}

TEST(BranchBound, SolvesSmallKnapsack) {
  // max 10a + 6b + 4c s.t. a + b + c <= 2 (binary).
  IlpProblem problem;
  problem.AddVar(10);
  problem.AddVar(6);
  problem.AddVar(4);
  problem.AddRow({{{0, 1.0}, {1, 1.0}, {2, 1.0}}, RowOp::kLe, 2.0});
  IlpResult result = BranchBoundSolver().Solve(problem);
  ASSERT_TRUE(result.feasible);
  EXPECT_TRUE(result.optimal);
  EXPECT_NEAR(result.objective, 16.0, 1e-9);
  EXPECT_EQ(result.x[0], 1);
  EXPECT_EQ(result.x[1], 1);
  EXPECT_EQ(result.x[2], 0);
}

TEST(BranchBound, DetectsInfeasibility) {
  IlpProblem problem;
  problem.AddVar(1);
  problem.AddRow({{{0, 1.0}}, RowOp::kGe, 2.0});  // binary can't reach 2
  IlpResult result = BranchBoundSolver().Solve(problem);
  EXPECT_FALSE(result.feasible);
}

TEST(BranchBound, MatchesBruteForceOnRandomInstances) {
  Rng rng(31415);
  for (int trial = 0; trial < 40; ++trial) {
    IlpProblem problem;
    const int n = 2 + static_cast<int>(rng.Uniform(7));
    for (int v = 0; v < n; ++v) {
      problem.AddVar(rng.UniformRange(-5, 10));
    }
    const int m = 1 + static_cast<int>(rng.Uniform(6));
    for (int r = 0; r < m; ++r) {
      LinearRow row;
      for (int v = 0; v < n; ++v) {
        if (rng.Bernoulli(0.5)) {
          row.coefs.emplace_back(v, static_cast<double>(rng.UniformRange(-3, 3)));
        }
      }
      if (row.coefs.empty()) row.coefs.emplace_back(0, 1.0);
      row.op = rng.Bernoulli(0.5) ? RowOp::kLe : RowOp::kGe;
      row.rhs = static_cast<double>(rng.UniformRange(-2, 4));
      problem.AddRow(std::move(row));
    }
    bool expected_feasible = false;
    double expected = BruteForceIlp(problem, &expected_feasible);
    IlpResult result = BranchBoundSolver().Solve(problem);
    EXPECT_EQ(result.feasible, expected_feasible);
    if (expected_feasible && result.feasible) {
      EXPECT_TRUE(result.optimal);
      EXPECT_NEAR(result.objective, expected, 1e-6);
    }
  }
}

TEST(BranchBound, EmptyProblem) {
  IlpProblem problem;
  IlpResult result = BranchBoundSolver().Solve(problem);
  EXPECT_TRUE(result.feasible);
  EXPECT_TRUE(result.optimal);
  EXPECT_EQ(result.objective, 0.0);
}

}  // namespace
}  // namespace ilp
}  // namespace tecore
