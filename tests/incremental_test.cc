// The incremental re-solve determinism contract: after any batch of
// insertions and retractions, ApplyEdits must be *bit-identical* to a
// from-scratch run of the full pipeline on the edited KB — the maintained
// canonical ground network (atom layout, prior weights, clause list), the
// kept/removed fact sets, the derived facts, and the objective. Thread
// counts must not matter on either path.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "core/edits.h"
#include "core/resolver.h"
#include "core/session.h"
#include "datagen/generators.h"
#include "ground/ground_network.h"
#include "ground/incremental.h"
#include "rdf/io.h"
#include "rules/library.h"
#include "rules/parser.h"
#include "util/random.h"
#include "util/string_util.h"

namespace tecore {
namespace {

/// Renders a network dictionary-independently: atoms by content (with
/// evidence flag and bit-exact prior), clauses by literal structure.
std::string RenderNetwork(const ground::GroundNetwork& net,
                          const rdf::Dictionary& dict) {
  std::string out;
  for (ground::AtomId id = 0; id < net.NumAtoms(); ++id) {
    const ground::GroundAtom& atom = net.atom(id);
    out += net.AtomToString(id, dict);
    out += StringPrintf(" prior=%s evid=%d\n",
                        FormatDoubleExact(atom.prior_weight).c_str(),
                        atom.is_evidence ? 1 : 0);
  }
  for (const ground::GroundClause& clause : net.clauses()) {
    out += clause.hard ? "hard" : "soft";
    out += StringPrintf(" w=%s rule=%d lits=",
                        FormatDoubleExact(clause.weight).c_str(),
                        clause.rule_index);
    for (int32_t lit : clause.literals) out += StringPrintf("%d,", lit);
    out += '\n';
  }
  return out;
}

/// Maps fact ids of a graph-with-tombstones to the ids the compacted graph
/// assigns (live rank), so flip sets compare across the two worlds.
std::vector<rdf::FactId> ToLiveRanks(const rdf::TemporalGraph& graph,
                                     const std::vector<rdf::FactId>& ids) {
  std::vector<rdf::FactId> out;
  out.reserve(ids.size());
  for (rdf::FactId id : ids) {
    out.push_back(static_cast<rdf::FactId>(graph.LiveRank(id)));
  }
  return out;
}

void ExpectResolutionBitIdentical(const core::ResolveResult& incremental,
                                  const rdf::TemporalGraph& edited_graph,
                                  const core::ResolveResult& scratch) {
  // The chunked columnar store must stay structurally sound under the
  // incremental pipeline's in-place mutations.
  Status invariants = edited_graph.CheckInvariants();
  EXPECT_TRUE(invariants.ok()) << invariants.ToString();
  EXPECT_EQ(incremental.objective, scratch.objective);  // bitwise
  EXPECT_EQ(incremental.feasible, scratch.feasible);
  EXPECT_EQ(incremental.optimal, scratch.optimal);
  EXPECT_EQ(incremental.ground_atoms, scratch.ground_atoms);
  EXPECT_EQ(incremental.ground_clauses, scratch.ground_clauses);
  EXPECT_EQ(incremental.num_components, scratch.num_components);
  EXPECT_EQ(incremental.largest_component, scratch.largest_component);
  EXPECT_EQ(ToLiveRanks(edited_graph, incremental.kept_facts),
            scratch.kept_facts);
  EXPECT_EQ(ToLiveRanks(edited_graph, incremental.removed_facts),
            scratch.removed_facts);
  ASSERT_EQ(incremental.derived_facts.size(), scratch.derived_facts.size());
  for (size_t i = 0; i < incremental.derived_facts.size(); ++i) {
    EXPECT_EQ(incremental.derived_facts[i].score,
              scratch.derived_facts[i].score);
    EXPECT_EQ(
        incremental.consistent_graph.FactToString(
            incremental.derived_facts[i].fact),
        scratch.consistent_graph.FactToString(scratch.derived_facts[i].fact));
  }
  // The repaired output graph must be byte-identical on disk.
  EXPECT_EQ(rdf::WriteGraphText(incremental.consistent_graph),
            rdf::WriteGraphText(scratch.consistent_graph));
}

/// From-scratch reference on the edited KB (compacted copy, so tombstones
/// cannot leak into the reference path).
core::ResolveResult ScratchResolve(const rdf::TemporalGraph& graph,
                                   const rules::RuleSet& rules,
                                   const core::ResolveOptions& options) {
  rdf::TemporalGraph compact = graph.CompactLive();
  core::Resolver resolver(&compact, rules, options);
  auto result = resolver.Run();
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return std::move(*result);
}

/// The from-scratch canonical network on the edited KB, rendered.
std::string ScratchNetworkRendering(const rdf::TemporalGraph& graph,
                                    const rules::RuleSet& rules,
                                    const ground::GroundingOptions& options) {
  rdf::TemporalGraph compact = graph.CompactLive();
  ground::GroundingOptions grounding = options;
  ground::Grounder grounder(&compact, rules, grounding);
  auto result = grounder.Run();
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return RenderNetwork(result->network, compact.dict());
}

rules::RuleSet FootballRules(bool with_inference) {
  auto constraints = rules::FootballConstraints();
  EXPECT_TRUE(constraints.ok());
  rules::RuleSet rules = *constraints;
  if (with_inference) {
    auto inference = rules::FootballInferenceRules();
    EXPECT_TRUE(inference.ok());
    rules.Merge(*inference);
  }
  return rules;
}

/// One randomized edit batch: inserts new playsFor spells and retracts
/// random live facts. Deterministic via `rng`.
std::vector<core::GraphEdit> RandomBatch(rdf::TemporalGraph* graph, Rng* rng,
                                         size_t inserts, size_t retracts) {
  std::vector<core::GraphEdit> edits;
  for (size_t i = 0; i < inserts; ++i) {
    core::GraphEdit edit;
    edit.kind = core::GraphEdit::Kind::kInsert;
    const int64_t begin = 1990 + static_cast<int64_t>(rng->Uniform(25));
    const std::string player =
        "player" + std::to_string(rng->Uniform(200));
    const std::string team = "team" + std::to_string(rng->Uniform(16));
    // Random high-precision confidence: exercises exact round-tripping
    // and makes exact objective ties (which any solver may break by
    // enumeration order) measure-zero.
    const double conf =
        0.05 + 0.9 * (static_cast<double>(rng->Next() >> 11) * 0x1.0p-53);
    edit.fact = rdf::TemporalFact(
        graph->dict().InternIri(player), graph->dict().InternIri("playsFor"),
        graph->dict().InternIri(team),
        temporal::Interval(begin, begin + static_cast<int64_t>(
                                              rng->Uniform(6))),
        conf);
    edits.push_back(edit);
  }
  for (size_t i = 0; i < retracts && graph->NumLiveFacts() > 0; ++i) {
    // Pick a random live fact (facts inserted above are candidates too —
    // insert+retract of the same quad in one batch is a legal script).
    rdf::FactId id =
        static_cast<rdf::FactId>(rng->Uniform(graph->NumFacts()));
    while (!graph->is_live(id)) id = (id + 1) % graph->NumFacts();
    core::GraphEdit edit;
    edit.kind = core::GraphEdit::Kind::kRetract;
    edit.fact = graph->fact(id);
    // Avoid double-retracting the same quad within a batch (the second
    // application would match nothing and fail by design).
    bool duplicate = false;
    for (const core::GraphEdit& prev : edits) {
      if (prev.kind == core::GraphEdit::Kind::kRetract &&
          prev.fact.SameTriple(edit.fact) &&
          prev.fact.interval == edit.fact.interval) {
        duplicate = true;
        break;
      }
    }
    if (!duplicate) edits.push_back(edit);
  }
  return edits;
}

TEST(IncrementalResolve, RandomizedBatchesMatchFromScratch) {
  // Three independent incremental tracks (1/2/4 threads) apply identical
  // edit batches; every track must match the sequential from-scratch
  // reference bit-for-bit after every batch — network included.
  const rules::RuleSet rules = FootballRules(/*with_inference=*/true);
  datagen::FootballDbOptions gen;
  gen.num_players = 150;
  gen.num_teams = 16;

  struct Track {
    datagen::GeneratedKg kg;
    std::unique_ptr<core::IncrementalResolver> resolver;
  };
  std::vector<std::unique_ptr<Track>> tracks;
  for (int threads : {1, 2, 4}) {
    auto track = std::make_unique<Track>();
    track->kg = datagen::GenerateFootballDb(gen);
    core::ResolveOptions options;
    options.num_threads = threads;
    options.ground_threads = threads;
    track->resolver = std::make_unique<core::IncrementalResolver>(
        &track->kg.graph, rules, options);
    auto init = track->resolver->Initialize();
    ASSERT_TRUE(init.ok()) << init.status().ToString();
    tracks.push_back(std::move(track));
  }

  Rng rng(20260730);
  for (int batch = 0; batch < 4; ++batch) {
    // Build the batch against track 0's graph; term ids are
    // dictionary-specific, so re-intern per track via the rendered form.
    std::vector<core::GraphEdit> edits = RandomBatch(
        &tracks[0]->kg.graph, &rng, /*inserts=*/3, /*retracts=*/2);

    std::vector<core::ResolveResult> results;
    for (std::unique_ptr<Track>& track : tracks) {
      std::vector<core::GraphEdit> local = edits;
      if (track != tracks[0]) {
        for (core::GraphEdit& edit : local) {
          const rdf::Dictionary& dict0 = tracks[0]->kg.graph.dict();
          edit.fact = rdf::TemporalFact(
              track->kg.graph.dict().Intern(dict0.Lookup(edit.fact.subject)),
              track->kg.graph.dict().Intern(
                  dict0.Lookup(edit.fact.predicate)),
              track->kg.graph.dict().Intern(dict0.Lookup(edit.fact.object)),
              edit.fact.interval, edit.fact.confidence);
        }
      }
      auto result = track->resolver->ApplyEdits(local);
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      results.push_back(std::move(*result));
    }

    core::ResolveOptions scratch_options;
    core::ResolveResult scratch =
        ScratchResolve(tracks[0]->kg.graph, rules, scratch_options);
    const std::string scratch_net = ScratchNetworkRendering(
        tracks[0]->kg.graph, rules, ground::GroundingOptions());
    for (size_t t = 0; t < tracks.size(); ++t) {
      SCOPED_TRACE(StringPrintf("batch %d track %zu", batch, t));
      ExpectResolutionBitIdentical(results[t], tracks[t]->kg.graph, scratch);
      EXPECT_EQ(RenderNetwork(tracks[t]->resolver->network(),
                              tracks[t]->kg.graph.dict()),
                scratch_net);
    }
  }
}

TEST(IncrementalResolve, PureInsertionFastPathIsBitIdentical) {
  // Insert-only batches on a constraint-only rule set take the O(remap)
  // fast path (block rotation instead of full rebuild) — it must be just
  // as bit-identical as the general path, network layout included.
  const rules::RuleSet rules = FootballRules(/*with_inference=*/false);
  datagen::FootballDbOptions gen;
  gen.num_players = 120;
  datagen::GeneratedKg kg = datagen::GenerateFootballDb(gen);
  core::IncrementalResolver resolver(&kg.graph, rules,
                                     core::ResolveOptions());
  ASSERT_TRUE(resolver.Initialize().ok());

  Rng rng(99);
  for (int batch = 0; batch < 3; ++batch) {
    SCOPED_TRACE(batch);
    std::vector<core::GraphEdit> edits =
        RandomBatch(&kg.graph, &rng, /*inserts=*/4, /*retracts=*/0);
    auto result = resolver.ApplyEdits(edits);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_TRUE(resolver.last_update_stats().fast_path);
    core::ResolveResult scratch =
        ScratchResolve(kg.graph, rules, core::ResolveOptions());
    ExpectResolutionBitIdentical(*result, kg.graph, scratch);
    EXPECT_EQ(RenderNetwork(resolver.network(), kg.graph.dict()),
              ScratchNetworkRendering(kg.graph, rules,
                                      ground::GroundingOptions()));
  }
  // A later retraction (slow path) over fast-path-maintained state must
  // keep the contract too — the two paths have to compose.
  std::vector<core::GraphEdit> edits =
      RandomBatch(&kg.graph, &rng, /*inserts=*/1, /*retracts=*/3);
  auto result = resolver.ApplyEdits(edits);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  core::ResolveResult scratch =
      ScratchResolve(kg.graph, rules, core::ResolveOptions());
  ExpectResolutionBitIdentical(*result, kg.graph, scratch);
  EXPECT_EQ(RenderNetwork(resolver.network(), kg.graph.dict()),
            ScratchNetworkRendering(kg.graph, rules,
                                    ground::GroundingOptions()));
}

TEST(IncrementalResolve, RetractAndRederiveInOneBatch) {
  // DRed resurrection: the only fact deriving a worksFor atom is retracted
  // while another fact deriving the same atom is inserted in the same
  // batch — the sweep must keep the atom alive through the new support.
  const rules::RuleSet rules = FootballRules(/*with_inference=*/true);
  auto graph = rdf::ParseGraphText(R"(
    CR playsFor Palermo [1984,1986] 0.5 .
    Palermo locatedIn Italy [1900,2020] 1.0 .
  )");
  ASSERT_TRUE(graph.ok()) << graph.status().ToString();
  rdf::TemporalGraph kg = std::move(*graph);

  core::IncrementalResolver resolver(&kg, rules, core::ResolveOptions());
  auto init = resolver.Initialize();
  ASSERT_TRUE(init.ok()) << init.status().ToString();
  ASSERT_FALSE(init->derived_facts.empty());  // worksFor/livesIn derived

  auto edits = core::ParseEditScript(R"(
    - CR playsFor Palermo [1984,1986] .
    + CR playsFor Palermo [1984,1986] 0.7 .
  )",
                                     &kg);
  ASSERT_TRUE(edits.ok()) << edits.status().ToString();
  auto result = resolver.ApplyEdits(*edits);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  core::ResolveResult scratch =
      ScratchResolve(kg, rules, core::ResolveOptions());
  ExpectResolutionBitIdentical(*result, kg, scratch);
  EXPECT_EQ(RenderNetwork(resolver.network(), kg.dict()),
            ScratchNetworkRendering(kg, rules, ground::GroundingOptions()));
}

TEST(IncrementalResolve, DuplicateQuadSupportMergesAndSplits) {
  // Two facts share a quad (their priors merge into one evidence atom);
  // retracting one must leave the atom alive with the other's prior,
  // bit-exactly as a fresh run would seed it.
  const rules::RuleSet rules = FootballRules(/*with_inference=*/false);
  auto graph = rdf::ParseGraphText(R"(
    CR coach Chelsea [2000,2004] 0.9 .
    CR coach Chelsea [2000,2004] 0.6 .
    CR coach Napoli [2001,2003] 0.6 .
  )");
  ASSERT_TRUE(graph.ok());
  rdf::TemporalGraph kg = std::move(*graph);
  core::IncrementalResolver resolver(&kg, rules, core::ResolveOptions());
  ASSERT_TRUE(resolver.Initialize().ok());

  // Retraction by quad tombstones *both* duplicates; re-insert one.
  auto edits = core::ParseEditScript(R"(
    - CR coach Chelsea [2000,2004] .
    + CR coach Chelsea [2000,2004] 0.6 .
  )",
                                     &kg);
  ASSERT_TRUE(edits.ok()) << edits.status().ToString();
  auto result = resolver.ApplyEdits(*edits);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(kg.NumLiveFacts(), 2u);

  core::ResolveResult scratch =
      ScratchResolve(kg, rules, core::ResolveOptions());
  ExpectResolutionBitIdentical(*result, kg, scratch);
  EXPECT_EQ(RenderNetwork(resolver.network(), kg.dict()),
            ScratchNetworkRendering(kg, rules, ground::GroundingOptions()));
}

TEST(IncrementalResolve, PslBackendSplicesToo) {
  const rules::RuleSet rules = FootballRules(/*with_inference=*/false);
  datagen::FootballDbOptions gen;
  gen.num_players = 100;
  datagen::GeneratedKg kg = datagen::GenerateFootballDb(gen);

  core::ResolveOptions options;
  options.solver = rules::SolverKind::kPsl;
  core::IncrementalResolver resolver(&kg.graph, rules, options);
  ASSERT_TRUE(resolver.Initialize().ok());

  Rng rng(7);
  auto edits = RandomBatch(&kg.graph, &rng, 2, 2);
  auto result = resolver.ApplyEdits(edits);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GT(result->spliced_components, 0u);

  core::ResolveResult scratch = ScratchResolve(kg.graph, rules, options);
  ExpectResolutionBitIdentical(*result, kg.graph, scratch);
}

TEST(IncrementalResolve, SessionAppliesEditScriptsAndSplices) {
  core::Session session;
  datagen::FootballDbOptions gen;
  gen.num_players = 200;
  session.SetGraph(std::move(datagen::GenerateFootballDb(gen).graph));
  session.AddRules(FootballRules(/*with_inference=*/false));

  core::ResolveOptions options;
  auto first = session.ApplyEditScript(
      "+ playerX playsFor teamY [2001,2005] 0.85 .\n", options);
  ASSERT_TRUE(first.ok()) << first.status().ToString();

  // Second edit: nearly every component is clean and spliced.
  auto second = session.ApplyEditScript(
      "+ playerX playsFor teamZ [2003,2007] 0.4 . # overlapping spell\n",
      options);
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_GT(second->spliced_components, 0u);
  EXPECT_LT(second->dirty_components, second->num_components / 4 + 8);

  core::ResolveResult scratch =
      ScratchResolve(session.graph(), session.rules(), options);
  ExpectResolutionBitIdentical(*second, session.graph(), scratch);

  // Retracting a fact that does not exist is a script error — and the
  // batch is atomic: the valid insert before the bad retract must NOT
  // leak into the graph.
  const size_t live_before = session.graph().NumLiveFacts();
  const uint64_t epoch_before = session.graph().edit_epoch();
  auto bad = session.ApplyEditScript(
      "+ playerY playsFor teamQ [1999,2001] 0.5 .\n"
      "- nosuch fact here [1,2] .\n",
      options);
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(session.graph().NumLiveFacts(), live_before);
  EXPECT_EQ(session.graph().edit_epoch(), epoch_before);
  // Retract-after-insert of the same quad within one batch is legal.
  auto churn = session.ApplyEditScript(
      "+ playerY playsFor teamQ [1999,2001] 0.5 .\n"
      "- playerY playsFor teamQ [1999,2001] .\n",
      options);
  ASSERT_TRUE(churn.ok()) << churn.status().ToString();
  EXPECT_EQ(session.graph().NumLiveFacts(), live_before);
}

TEST(IncrementalResolve, EditScriptParsing) {
  rdf::TemporalGraph graph;
  auto edits = core::ParseEditScript(R"(
    # comment line
    + a p b [1,5] 0.75 .
    - c p d [2]      # retract, trailing comment
  )",
                                     &graph);
  ASSERT_TRUE(edits.ok()) << edits.status().ToString();
  ASSERT_EQ(edits->size(), 2u);
  EXPECT_EQ((*edits)[0].kind, core::GraphEdit::Kind::kInsert);
  EXPECT_DOUBLE_EQ((*edits)[0].fact.confidence, 0.75);
  EXPECT_EQ((*edits)[1].kind, core::GraphEdit::Kind::kRetract);
  EXPECT_EQ((*edits)[1].fact.interval, temporal::Interval(2, 2));

  auto bad = core::ParseEditScript("a p b [1,2] .\n", &graph);
  EXPECT_FALSE(bad.ok());  // missing +/- prefix
}

}  // namespace
}  // namespace tecore
