#include <gtest/gtest.h>

#include <cmath>

#include "datagen/generators.h"
#include "ground/grounder.h"
#include "mln/gibbs.h"
#include "mln/solver.h"
#include "rules/library.h"

namespace tecore {
namespace mln {
namespace {

/// Exact marginals by enumerating all worlds of a small network under the
/// log-linear distribution (hard clauses mapped to `hard_weight` to match
/// the sampler's target distribution exactly).
std::vector<double> ExactMarginals(const ground::GroundNetwork& net,
                                   double hard_weight) {
  const size_t n = net.NumAtoms();
  std::vector<double> numerator(n, 0.0);
  double z = 0.0;
  for (uint64_t mask = 0; mask < (1ULL << n); ++mask) {
    double score = 0.0;
    for (const ground::GroundClause& clause : net.clauses()) {
      bool satisfied = false;
      for (int32_t lit : clause.literals) {
        const bool value = (mask >> ground::LiteralAtom(lit)) & 1;
        if (value == ground::LiteralSign(lit)) {
          satisfied = true;
          break;
        }
      }
      if (satisfied) score += clause.hard ? hard_weight : clause.weight;
    }
    const double p = std::exp(score);
    z += p;
    for (size_t a = 0; a < n; ++a) {
      if ((mask >> a) & 1) numerator[a] += p;
    }
  }
  for (double& v : numerator) v /= z;
  return numerator;
}

ground::GroundingResult GroundRunningExample() {
  rdf::TemporalGraph graph = datagen::RunningExampleGraph(false);
  auto constraints = rules::PaperConstraints();
  EXPECT_TRUE(constraints.ok());
  ground::Grounder grounder(&graph, *constraints);
  auto result = grounder.Run();
  EXPECT_TRUE(result.ok());
  return std::move(*result);
}

TEST(Gibbs, SingleAtomMatchesSigmoid) {
  ground::GroundNetwork net;
  ground::AtomId atom =
      net.GetOrAddAtom(0, 1, 2, temporal::Interval(0, 1), true, 1.5, 0);
  net.AddPriorClauses(0.0);
  (void)atom;
  GibbsOptions options;
  options.sample_sweeps = 20000;
  auto result = GibbsSampler(net, options).Run();
  ASSERT_TRUE(result.ok());
  // P(x=1) = sigmoid(1.5) ≈ 0.8176.
  EXPECT_NEAR(result->marginals[0], 1.0 / (1.0 + std::exp(-1.5)), 0.02);
}

TEST(Gibbs, MatchesExactEnumerationOnRunningExample) {
  ground::GroundingResult grounding = GroundRunningExample();
  const auto& net = grounding.network;
  ASSERT_LE(net.NumAtoms(), 12u) << "exact enumeration needs a small net";
  GibbsOptions options;
  options.sample_sweeps = 30000;
  options.burn_in_sweeps = 2000;
  auto result = GibbsSampler(net, options).Run();
  ASSERT_TRUE(result.ok());
  std::vector<double> exact = ExactMarginals(net, options.hard_weight);
  for (size_t a = 0; a < net.NumAtoms(); ++a) {
    EXPECT_NEAR(result->marginals[a], exact[a], 0.03) << "atom " << a;
  }
}

TEST(Gibbs, ConflictingFactsShareProbabilityMass) {
  // Chelsea (0.9) and Napoli (0.6) cannot both hold: the posterior should
  // clearly favour Chelsea, and their joint mass can't exceed 1 by much
  // (soft-hard constraint leaves a tiny both-false/both-true residue).
  ground::GroundingResult grounding = GroundRunningExample();
  GibbsOptions options;
  options.sample_sweeps = 20000;
  auto result = GibbsSampler(grounding.network, options).Run();
  ASSERT_TRUE(result.ok());
  const double chelsea = result->marginals[0];
  const double napoli = result->marginals[4];
  // With confidence-scale weights the posterior is diffuse (the exact
  // pairwise distribution gives P(Chelsea)=0.466, P(Napoli)=0.345): the
  // ordering holds, and the conflict caps their joint mass.
  EXPECT_GT(chelsea, napoli + 0.05);
  EXPECT_LT(napoli, 0.5);
  EXPECT_LT(chelsea + napoli, 1.0);
}

TEST(Gibbs, DeterministicForSeed) {
  ground::GroundingResult grounding = GroundRunningExample();
  GibbsOptions options;
  options.sample_sweeps = 500;
  auto a = GibbsSampler(grounding.network, options).Run();
  auto b = GibbsSampler(grounding.network, options).Run();
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->marginals, b->marginals);
  options.seed += 1;
  auto c = GibbsSampler(grounding.network, options).Run();
  ASSERT_TRUE(c.ok());
  EXPECT_NE(a->marginals, c->marginals);
}

TEST(Gibbs, MarginalsAreProbabilities) {
  datagen::FootballDbOptions gen;
  gen.num_players = 50;
  datagen::GeneratedKg kg = datagen::GenerateFootballDb(gen);
  auto constraints = rules::FootballConstraints();
  ASSERT_TRUE(constraints.ok());
  ground::Grounder grounder(&kg.graph, *constraints);
  auto grounding = grounder.Run();
  ASSERT_TRUE(grounding.ok());
  GibbsOptions options;
  options.sample_sweeps = 200;
  options.burn_in_sweeps = 50;
  auto result = GibbsSampler(grounding->network, options).Run();
  ASSERT_TRUE(result.ok());
  for (double m : result->marginals) {
    EXPECT_GE(m, 0.0);
    EXPECT_LE(m, 1.0);
  }
}

TEST(Gibbs, MapStateInitializationIsAccepted) {
  ground::GroundingResult grounding = GroundRunningExample();
  MlnMapSolver solver(grounding.network);
  auto map_solution = solver.Solve();
  ASSERT_TRUE(map_solution.ok());
  GibbsOptions options;
  options.initial_state = map_solution->atom_values;
  options.sample_sweeps = 500;
  auto result = GibbsSampler(grounding.network, options).Run();
  ASSERT_TRUE(result.ok());
  // The MAP preference (Chelsea over Napoli) shows in the posterior too.
  EXPECT_GT(result->marginals[0], result->marginals[4]);

  GibbsOptions bad;
  bad.initial_state = {true};  // wrong size
  EXPECT_FALSE(GibbsSampler(grounding.network, bad).Run().ok());
}

TEST(Gibbs, EmptyNetwork) {
  ground::GroundNetwork net;
  auto result = GibbsSampler(net).Run();
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->marginals.empty());
}

}  // namespace
}  // namespace mln
}  // namespace tecore
