#include <gtest/gtest.h>

#include <algorithm>

#include "rdf/dictionary.h"
#include "rdf/graph.h"
#include "rdf/io.h"

namespace tecore {
namespace rdf {
namespace {

TEST(Term, KindsAndToString) {
  EXPECT_EQ(Term::Iri("CR").ToString(), "CR");
  EXPECT_EQ(Term::IntLiteral(1951).ToString(), "1951");
  EXPECT_EQ(Term::Literal("a \"b\"").ToString(), "\"a \\\"b\\\"\"");
  EXPECT_EQ(Term::Blank("n1").ToString(), "_:n1");
  EXPECT_TRUE(Term::IntLiteral(5).is_int());
  EXPECT_EQ(Term::IntLiteral(-7).int_value(), -7);
  // Same lexical form, different kinds -> different terms.
  EXPECT_NE(Term::Iri("1951"), Term::IntLiteral(1951));
}

TEST(Dictionary, InterningIsIdempotent) {
  Dictionary dict;
  TermId a = dict.InternIri("coach");
  TermId b = dict.InternIri("coach");
  TermId c = dict.InternIri("playsFor");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(dict.Size(), 2u);
  EXPECT_EQ(dict.Lookup(a).lexical(), "coach");
}

TEST(Dictionary, FindDoesNotIntern) {
  Dictionary dict;
  EXPECT_FALSE(dict.FindIri("nope").ok());
  EXPECT_EQ(dict.Size(), 0u);
  dict.InternIri("yes");
  EXPECT_TRUE(dict.FindIri("yes").ok());
}

TEST(Dictionary, PrefixCompletion) {
  Dictionary dict;
  dict.InternIri("playsFor");
  dict.InternIri("playedIn");
  dict.InternIri("coach");
  dict.Intern(Term::Literal("plays"));  // literal: not offered
  auto hits = dict.CompleteIri("play");
  EXPECT_EQ(hits.size(), 2u);
}

TEST(TemporalGraph, AddAndIndexes) {
  TemporalGraph g;
  auto f1 = g.AddQuad("CR", "coach", "Chelsea", temporal::Interval(2000, 2004),
                      0.9);
  auto f2 = g.AddQuad("CR", "coach", "Napoli", temporal::Interval(2001, 2003),
                      0.6);
  auto f3 = g.AddQuad("CR", "playsFor", "Palermo",
                      temporal::Interval(1984, 1986), 0.5);
  ASSERT_TRUE(f1.ok());
  ASSERT_TRUE(f2.ok());
  ASSERT_TRUE(f3.ok());
  EXPECT_EQ(g.NumFacts(), 3u);

  TermId coach = *g.dict().FindIri("coach");
  TermId cr = *g.dict().FindIri("CR");
  EXPECT_EQ(g.FactsWithPredicate(coach).size(), 2u);
  EXPECT_EQ(g.FactsWithSubject(cr).size(), 3u);
  EXPECT_EQ(g.FactsWithSubjectPredicate(cr, coach).size(), 2u);
  EXPECT_TRUE(g.FactsWithPredicate(9999).empty());
}

TEST(TemporalGraph, RejectsBadConfidence) {
  TemporalGraph g;
  EXPECT_FALSE(
      g.AddQuad("a", "p", "b", temporal::Interval(0, 1), 0.0).ok());
  EXPECT_FALSE(
      g.AddQuad("a", "p", "b", temporal::Interval(0, 1), 1.5).ok());
  EXPECT_TRUE(
      g.AddQuad("a", "p", "b", temporal::Interval(0, 1), 1.0).ok());
}

TEST(TemporalGraph, TemporalIndexFindsOverlaps) {
  TemporalGraph g;
  ASSERT_TRUE(g.AddQuad("CR", "coach", "Chelsea",
                        temporal::Interval(2000, 2004), 0.9)
                  .ok());
  ASSERT_TRUE(g.AddQuad("CR", "coach", "Leicester",
                        temporal::Interval(2015, 2017), 0.7)
                  .ok());
  ASSERT_TRUE(g.AddQuad("CR", "coach", "Napoli",
                        temporal::Interval(2001, 2003), 0.6)
                  .ok());
  TermId coach = *g.dict().FindIri("coach");
  auto hits = g.FactsIntersecting(coach, temporal::Interval(2001, 2002));
  EXPECT_EQ(hits.size(), 2u);
  // Index updates when facts are added afterwards.
  ASSERT_TRUE(g.AddQuad("CR", "coach", "Valencia",
                        temporal::Interval(1997, 1999), 0.8)
                  .ok());
  hits = g.FactsIntersecting(coach, temporal::Interval(1998, 2002));
  EXPECT_EQ(hits.size(), 3u);
}

TEST(TemporalGraph, PredicateCountsSorted) {
  TemporalGraph g;
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(g.AddQuad("s" + std::to_string(i), "playsFor", "T",
                          temporal::Interval(0, 1), 0.9)
                    .ok());
  }
  ASSERT_TRUE(
      g.AddQuad("s0", "birthDate", Term::IntLiteral(1980),
                temporal::Interval(1980, 2017), 1.0)
          .ok());
  auto counts = g.PredicateCounts();
  ASSERT_EQ(counts.size(), 2u);
  EXPECT_EQ(counts[0].second, 3u);  // playsFor first (most frequent)
}

TEST(TemporalGraph, FilterRebuildsCompactGraph) {
  TemporalGraph g;
  ASSERT_TRUE(g.AddQuad("a", "p", "b", temporal::Interval(0, 1), 0.9).ok());
  ASSERT_TRUE(g.AddQuad("c", "q", "d", temporal::Interval(2, 3), 0.8).ok());
  ASSERT_TRUE(g.AddQuad("e", "p", "f", temporal::Interval(4, 5), 0.7).ok());
  TemporalGraph filtered = g.Filter({true, false, true});
  EXPECT_EQ(filtered.NumFacts(), 2u);
  // Dictionary is rebuilt: the filtered graph resolves its own ids.
  EXPECT_TRUE(filtered.dict().FindIri("a").ok());
  EXPECT_FALSE(filtered.dict().FindIri("c").ok());
  EXPECT_EQ(filtered.FactToString(0).substr(0, 2), "(a");
}

TEST(RdfIo, ParsesTheRunningExample) {
  auto graph = ParseGraphText(R"(
    # Fig. 1 of the paper
    CR coach Chelsea [2000,2004] 0.9 .
    CR coach Leicester [2015,2017] 0.7 .
    CR playsFor Palermo [1984,1986] 0.5 .
    CR birthDate 1951 [1951,2017] 1.0 .
    CR coach Napoli [2001,2003] 0.6 .
  )");
  ASSERT_TRUE(graph.ok()) << graph.status().ToString();
  EXPECT_EQ(graph->NumFacts(), 5u);
  const TemporalFact& birth = graph->fact(3);
  EXPECT_TRUE(graph->dict().Lookup(birth.object).is_int());
  EXPECT_EQ(graph->dict().Lookup(birth.object).int_value(), 1951);
  EXPECT_EQ(birth.interval, temporal::Interval(1951, 2017));
}

TEST(RdfIo, HandlesStringsPointsAndDefaults) {
  auto graph = ParseGraphText(R"(
    CR label "Claudio Ranieri, the coach" [1951] .
    CR knows _:someone [2000,2001]
  )");
  ASSERT_TRUE(graph.ok()) << graph.status().ToString();
  EXPECT_EQ(graph->NumFacts(), 2u);
  EXPECT_EQ(graph->fact(0).interval, temporal::Interval(1951, 1951));
  EXPECT_DOUBLE_EQ(graph->fact(1).confidence, 1.0);  // default
  EXPECT_EQ(graph->dict().Lookup(graph->fact(0).object).kind(),
            TermKind::kLiteral);
  EXPECT_EQ(graph->dict().Lookup(graph->fact(1).object).kind(),
            TermKind::kBlank);
}

TEST(RdfIo, ReportsLineNumbersOnErrors) {
  auto graph = ParseGraphText("CR coach Chelsea [2000,2004] 0.9 .\nbroken\n");
  EXPECT_FALSE(graph.ok());
  EXPECT_NE(graph.status().message().find("line 2"), std::string::npos);
}

TEST(RdfIo, RejectsNonIriPredicate) {
  auto graph = ParseGraphText("CR \"coach\" Chelsea [2000,2004] 0.9 .");
  EXPECT_FALSE(graph.ok());
}

TEST(RdfIo, WriteParseRoundTrip) {
  auto graph = ParseGraphText(R"(
    CR coach Chelsea [2000,2004] 0.9 .
    CR birthDate 1951 [1951,2017] 1.0 .
    CR label "Mister 5,000 volts" [1951,2017] 0.5 .
  )");
  ASSERT_TRUE(graph.ok());
  std::string text = WriteGraphText(*graph);
  auto reparsed = ParseGraphText(text);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString() << "\n" << text;
  ASSERT_EQ(reparsed->NumFacts(), graph->NumFacts());
  for (FactId id = 0; id < graph->NumFacts(); ++id) {
    EXPECT_EQ(graph->FactToString(id), reparsed->FactToString(id));
  }
}

TEST(RdfIo, FileRoundTrip) {
  auto graph = ParseGraphText("CR coach Chelsea [2000,2004] 0.9 .\n");
  ASSERT_TRUE(graph.ok());
  const std::string path = ::testing::TempDir() + "/tecore_io_test.tq";
  ASSERT_TRUE(SaveGraphFile(*graph, path).ok());
  auto loaded = LoadGraphFile(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->NumFacts(), 1u);
  EXPECT_FALSE(LoadGraphFile("/nonexistent/path.tq").ok());
}

}  // namespace
}  // namespace rdf
}  // namespace tecore
