#include <gtest/gtest.h>

#include <algorithm>

#include "rdf/dictionary.h"
#include "rdf/graph.h"
#include "rdf/io.h"

namespace tecore {
namespace rdf {
namespace {

TEST(Term, KindsAndToString) {
  EXPECT_EQ(Term::Iri("CR").ToString(), "CR");
  EXPECT_EQ(Term::IntLiteral(1951).ToString(), "1951");
  EXPECT_EQ(Term::Literal("a \"b\"").ToString(), "\"a \\\"b\\\"\"");
  EXPECT_EQ(Term::Blank("n1").ToString(), "_:n1");
  EXPECT_TRUE(Term::IntLiteral(5).is_int());
  EXPECT_EQ(Term::IntLiteral(-7).int_value(), -7);
  // Same lexical form, different kinds -> different terms.
  EXPECT_NE(Term::Iri("1951"), Term::IntLiteral(1951));
}

TEST(Dictionary, InterningIsIdempotent) {
  Dictionary dict;
  TermId a = dict.InternIri("coach");
  TermId b = dict.InternIri("coach");
  TermId c = dict.InternIri("playsFor");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(dict.Size(), 2u);
  EXPECT_EQ(dict.Lookup(a).lexical(), "coach");
}

TEST(Dictionary, FindDoesNotIntern) {
  Dictionary dict;
  EXPECT_FALSE(dict.FindIri("nope").ok());
  EXPECT_EQ(dict.Size(), 0u);
  dict.InternIri("yes");
  EXPECT_TRUE(dict.FindIri("yes").ok());
}

TEST(Dictionary, PrefixCompletion) {
  Dictionary dict;
  dict.InternIri("playsFor");
  dict.InternIri("playedIn");
  dict.InternIri("coach");
  dict.Intern(Term::Literal("plays"));  // literal: not offered
  auto hits = dict.CompleteIri("play");
  EXPECT_EQ(hits.size(), 2u);
}

TEST(TemporalGraph, AddAndIndexes) {
  TemporalGraph g;
  auto f1 = g.AddQuad("CR", "coach", "Chelsea", temporal::Interval(2000, 2004),
                      0.9);
  auto f2 = g.AddQuad("CR", "coach", "Napoli", temporal::Interval(2001, 2003),
                      0.6);
  auto f3 = g.AddQuad("CR", "playsFor", "Palermo",
                      temporal::Interval(1984, 1986), 0.5);
  ASSERT_TRUE(f1.ok());
  ASSERT_TRUE(f2.ok());
  ASSERT_TRUE(f3.ok());
  EXPECT_EQ(g.NumFacts(), 3u);

  TermId coach = *g.dict().FindIri("coach");
  TermId cr = *g.dict().FindIri("CR");
  EXPECT_EQ(g.FactsWithPredicate(coach).size(), 2u);
  EXPECT_EQ(g.FactsWithSubject(cr).size(), 3u);
  EXPECT_EQ(g.FactsWithSubjectPredicate(cr, coach).size(), 2u);
  EXPECT_TRUE(g.FactsWithPredicate(9999).empty());
}

TEST(TemporalGraph, RejectsBadConfidence) {
  TemporalGraph g;
  EXPECT_FALSE(
      g.AddQuad("a", "p", "b", temporal::Interval(0, 1), 0.0).ok());
  EXPECT_FALSE(
      g.AddQuad("a", "p", "b", temporal::Interval(0, 1), 1.5).ok());
  EXPECT_TRUE(
      g.AddQuad("a", "p", "b", temporal::Interval(0, 1), 1.0).ok());
}

TEST(TemporalGraph, TemporalIndexFindsOverlaps) {
  TemporalGraph g;
  ASSERT_TRUE(g.AddQuad("CR", "coach", "Chelsea",
                        temporal::Interval(2000, 2004), 0.9)
                  .ok());
  ASSERT_TRUE(g.AddQuad("CR", "coach", "Leicester",
                        temporal::Interval(2015, 2017), 0.7)
                  .ok());
  ASSERT_TRUE(g.AddQuad("CR", "coach", "Napoli",
                        temporal::Interval(2001, 2003), 0.6)
                  .ok());
  TermId coach = *g.dict().FindIri("coach");
  auto hits = g.FactsIntersecting(coach, temporal::Interval(2001, 2002));
  EXPECT_EQ(hits.size(), 2u);
  // Index updates when facts are added afterwards.
  ASSERT_TRUE(g.AddQuad("CR", "coach", "Valencia",
                        temporal::Interval(1997, 1999), 0.8)
                  .ok());
  hits = g.FactsIntersecting(coach, temporal::Interval(1998, 2002));
  EXPECT_EQ(hits.size(), 3u);
}

TEST(TemporalGraph, PredicateCountsSorted) {
  TemporalGraph g;
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(g.AddQuad("s" + std::to_string(i), "playsFor", "T",
                          temporal::Interval(0, 1), 0.9)
                    .ok());
  }
  ASSERT_TRUE(
      g.AddQuad("s0", "birthDate", Term::IntLiteral(1980),
                temporal::Interval(1980, 2017), 1.0)
          .ok());
  auto counts = g.PredicateCounts();
  ASSERT_EQ(counts.size(), 2u);
  EXPECT_EQ(counts[0].second, 3u);  // playsFor first (most frequent)
}

TEST(TemporalGraph, FilterRebuildsCompactGraph) {
  TemporalGraph g;
  ASSERT_TRUE(g.AddQuad("a", "p", "b", temporal::Interval(0, 1), 0.9).ok());
  ASSERT_TRUE(g.AddQuad("c", "q", "d", temporal::Interval(2, 3), 0.8).ok());
  ASSERT_TRUE(g.AddQuad("e", "p", "f", temporal::Interval(4, 5), 0.7).ok());
  TemporalGraph filtered = g.Filter({true, false, true});
  EXPECT_EQ(filtered.NumFacts(), 2u);
  // Dictionary is rebuilt: the filtered graph resolves its own ids.
  EXPECT_TRUE(filtered.dict().FindIri("a").ok());
  EXPECT_FALSE(filtered.dict().FindIri("c").ok());
  EXPECT_EQ(filtered.FactToString(0).substr(0, 2), "(a");
}

TEST(RdfIo, ParsesTheRunningExample) {
  auto graph = ParseGraphText(R"(
    # Fig. 1 of the paper
    CR coach Chelsea [2000,2004] 0.9 .
    CR coach Leicester [2015,2017] 0.7 .
    CR playsFor Palermo [1984,1986] 0.5 .
    CR birthDate 1951 [1951,2017] 1.0 .
    CR coach Napoli [2001,2003] 0.6 .
  )");
  ASSERT_TRUE(graph.ok()) << graph.status().ToString();
  EXPECT_EQ(graph->NumFacts(), 5u);
  const TemporalFact& birth = graph->fact(3);
  EXPECT_TRUE(graph->dict().Lookup(birth.object).is_int());
  EXPECT_EQ(graph->dict().Lookup(birth.object).int_value(), 1951);
  EXPECT_EQ(birth.interval, temporal::Interval(1951, 2017));
}

TEST(RdfIo, HandlesStringsPointsAndDefaults) {
  auto graph = ParseGraphText(R"(
    CR label "Claudio Ranieri, the coach" [1951] .
    CR knows _:someone [2000,2001]
  )");
  ASSERT_TRUE(graph.ok()) << graph.status().ToString();
  EXPECT_EQ(graph->NumFacts(), 2u);
  EXPECT_EQ(graph->fact(0).interval, temporal::Interval(1951, 1951));
  EXPECT_DOUBLE_EQ(graph->fact(1).confidence, 1.0);  // default
  EXPECT_EQ(graph->dict().Lookup(graph->fact(0).object).kind(),
            TermKind::kLiteral);
  EXPECT_EQ(graph->dict().Lookup(graph->fact(1).object).kind(),
            TermKind::kBlank);
}

TEST(RdfIo, ReportsLineNumbersOnErrors) {
  auto graph = ParseGraphText("CR coach Chelsea [2000,2004] 0.9 .\nbroken\n");
  EXPECT_FALSE(graph.ok());
  EXPECT_NE(graph.status().message().find("line 2"), std::string::npos);
}

TEST(RdfIo, RejectsNonIriPredicate) {
  auto graph = ParseGraphText("CR \"coach\" Chelsea [2000,2004] 0.9 .");
  EXPECT_FALSE(graph.ok());
}

TEST(RdfIo, WriteParseRoundTrip) {
  auto graph = ParseGraphText(R"(
    CR coach Chelsea [2000,2004] 0.9 .
    CR birthDate 1951 [1951,2017] 1.0 .
    CR label "Mister 5,000 volts" [1951,2017] 0.5 .
  )");
  ASSERT_TRUE(graph.ok());
  std::string text = WriteGraphText(*graph);
  auto reparsed = ParseGraphText(text);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString() << "\n" << text;
  ASSERT_EQ(reparsed->NumFacts(), graph->NumFacts());
  for (FactId id = 0; id < graph->NumFacts(); ++id) {
    EXPECT_EQ(graph->FactToString(id), reparsed->FactToString(id));
  }
}

TEST(RdfIo, CommentStripperTracksEscapes) {
  // Regression: a literal ending in an escaped backslash used to leave the
  // comment stripper "inside" the string, so the trailing comment became a
  // parse error.
  auto graph = ParseGraphText(
      "CR label \"ends with \\\\\" [1,2] 0.5 . # trailing comment\n"
      "CR label \"a \\\" # not a comment\" [3,4] . # real comment\n"
      "CR label \"inline # hash\" [5] .\n");
  ASSERT_TRUE(graph.ok()) << graph.status().ToString();
  ASSERT_EQ(graph->NumFacts(), 3u);
  EXPECT_EQ(graph->dict().Lookup(graph->fact(0).object).lexical(),
            "ends with \\");
  EXPECT_EQ(graph->dict().Lookup(graph->fact(1).object).lexical(),
            "a \" # not a comment");
  EXPECT_EQ(graph->dict().Lookup(graph->fact(2).object).lexical(),
            "inline # hash");
}

TEST(RdfIo, AttachedStatementTerminator) {
  // Regression: the '.' terminator attached to the interval (the examples'
  // style) used to fail with "expected 's p o [b,e] [conf]'".
  auto graph = ParseGraphText(
      "CR coach Chelsea [2000,2004].\n"
      "CR coach Leicester [2015,2017] 0.7.\n"
      "CR label \"dot inside.\" [1,2] .\n");
  ASSERT_TRUE(graph.ok()) << graph.status().ToString();
  ASSERT_EQ(graph->NumFacts(), 3u);
  EXPECT_EQ(graph->fact(0).interval, temporal::Interval(2000, 2004));
  EXPECT_DOUBLE_EQ(graph->fact(1).confidence, 0.7);
  // A quoted literal keeps its dot.
  EXPECT_EQ(graph->dict().Lookup(graph->fact(2).object).lexical(),
            "dot inside.");
}

TEST(RdfIo, ConfidenceRoundTripIsExact) {
  // Regression: "%g" wrote 6 significant digits, silently perturbing
  // confidences (and with them resolution objectives) on save/load.
  TemporalGraph g;
  const double confidences[] = {0.123456789, 0.1 + 0.2 - 0.2,
                                0.9999999999999999, 1e-9, 1.0,
                                0x1.23456789abcdep-1};
  for (double conf : confidences) {
    ASSERT_TRUE(g.AddQuad("s", "p", "o" + std::to_string(g.NumFacts()),
                          temporal::Interval(0, 1), conf)
                    .ok());
  }
  auto reparsed = ParseGraphText(WriteGraphText(g));
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  ASSERT_EQ(reparsed->NumFacts(), g.NumFacts());
  for (FactId id = 0; id < g.NumFacts(); ++id) {
    // Bit-exact, not approximately equal.
    EXPECT_EQ(g.fact(id).confidence, reparsed->fact(id).confidence)
        << "fact " << id;
  }
}

TEST(RdfIo, RoundTripIsBitExact) {
  // The full contract: Parse(Write(g)) reproduces every fact bit-exactly —
  // escaped quotes/backslashes, '#' inside strings, negative times,
  // single-point intervals, high-precision confidences.
  auto graph = ParseGraphText(
      "CR label \"quote \\\" backslash \\\\ both \\\\\\\"\" [1,2] "
      "0.123456789012345678 .\n"
      "CR label \"# looks like a comment\" [-40,-2] 0.6 .\n"
      "era began _:b0 [-4000] 0.25 .\n"
      "CR coach Chelsea [2000,2004] 0.9000000000000001 .\n"
      "CR birthDate 1951 [1951] .\n");
  ASSERT_TRUE(graph.ok()) << graph.status().ToString();
  const std::string text = WriteGraphText(*graph);
  auto reparsed = ParseGraphText(text);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString() << "\n" << text;
  ASSERT_EQ(reparsed->NumFacts(), graph->NumFacts());
  for (FactId id = 0; id < graph->NumFacts(); ++id) {
    const TemporalFact& a = graph->fact(id);
    const TemporalFact& b = reparsed->fact(id);
    EXPECT_EQ(graph->dict().Lookup(a.subject), reparsed->dict().Lookup(b.subject));
    EXPECT_EQ(graph->dict().Lookup(a.predicate),
              reparsed->dict().Lookup(b.predicate));
    EXPECT_EQ(graph->dict().Lookup(a.object), reparsed->dict().Lookup(b.object));
    EXPECT_EQ(a.interval, b.interval);
    EXPECT_EQ(a.confidence, b.confidence);  // bitwise
  }
  // Writing the reparsed graph must reproduce the text byte-for-byte (the
  // serializer is a fixed point).
  EXPECT_EQ(WriteGraphText(*reparsed), text);
}

TEST(TemporalGraph, RetractTombstonesAndKeepsIdsStable) {
  TemporalGraph g;
  ASSERT_TRUE(g.AddQuad("a", "p", "b", temporal::Interval(0, 1), 0.9).ok());
  ASSERT_TRUE(g.AddQuad("c", "p", "d", temporal::Interval(2, 3), 0.8).ok());
  ASSERT_TRUE(g.AddQuad("e", "q", "f", temporal::Interval(4, 5), 0.7).ok());
  const uint64_t epoch = g.edit_epoch();
  ASSERT_TRUE(g.Retract(1).ok());
  EXPECT_GT(g.edit_epoch(), epoch);
  EXPECT_EQ(g.NumFacts(), 3u);       // ids stay stable
  EXPECT_EQ(g.NumLiveFacts(), 2u);   // iteration skips the tombstone
  EXPECT_FALSE(g.is_live(1));
  EXPECT_TRUE(g.is_live(2));
  EXPECT_EQ(g.LiveRank(2), 1u);
  // Indexes drop the fact...
  TermId p = *g.dict().FindIri("p");
  EXPECT_EQ(g.FactsWithPredicate(p).size(), 1u);
  // ...and serialization skips it.
  EXPECT_EQ(WriteGraphText(g).find("c p d"), std::string::npos);
  // Double-retract and out-of-range are errors.
  EXPECT_FALSE(g.Retract(1).ok());
  EXPECT_FALSE(g.Retract(99).ok());
  // CompactLive renumbers densely.
  TemporalGraph compact = g.CompactLive();
  EXPECT_EQ(compact.NumFacts(), 2u);
  EXPECT_EQ(compact.FactToString(1).substr(0, 2), "(e");
}

TEST(TemporalGraph, ClonePreservesIdsAndTombstones) {
  TemporalGraph g;
  auto a = g.AddQuad("CR", "coach", "Chelsea", {2000, 2004}, 0.9);
  auto b = g.AddQuad("CR", "coach", "Napoli", {2001, 2003}, 0.6);
  auto c = g.AddQuad("CR", "playsFor", "Palermo", {1984, 1986}, 0.5);
  ASSERT_TRUE(a.ok() && b.ok() && c.ok());
  ASSERT_TRUE(g.Retract(*b).ok());

  TemporalGraph copy = g.Clone();
  ASSERT_EQ(copy.NumFacts(), g.NumFacts());
  EXPECT_EQ(copy.NumLiveFacts(), g.NumLiveFacts());
  EXPECT_EQ(copy.edit_epoch(), g.edit_epoch());
  EXPECT_EQ(copy.dict().Size(), g.dict().Size());
  for (TermId id = 0; id < g.dict().Size(); ++id) {
    EXPECT_EQ(copy.dict().Lookup(id), g.dict().Lookup(id));
  }
  for (FactId id = 0; id < g.NumFacts(); ++id) {
    EXPECT_EQ(copy.is_live(id), g.is_live(id));
    EXPECT_EQ(copy.FactToString(id), g.FactToString(id));
  }
  // Indexes were copied too (retracted fact stays dropped).
  EXPECT_EQ(copy.FactsWithPredicate(*g.dict().FindIri("coach")).size(), 1u);

  // The clone is independent: mutating it leaves the original alone.
  ASSERT_TRUE(copy.AddQuad("CR", "coach", "Leicester", {2015, 2017}, 0.7).ok());
  EXPECT_EQ(copy.NumFacts(), g.NumFacts() + 1);
  EXPECT_EQ(g.NumFacts(), 3u);
}

TEST(TemporalGraph, WarmedTemporalIndexAnswersWithoutMutation) {
  TemporalGraph g;
  ASSERT_TRUE(g.AddQuad("CR", "coach", "Chelsea", {2000, 2004}, 0.9).ok());
  ASSERT_TRUE(g.AddQuad("CR", "coach", "Napoli", {2001, 2003}, 0.6).ok());
  g.WarmTemporalIndexes();
  TermId coach = *g.dict().FindIri("coach");
  EXPECT_EQ(g.FactsIntersecting(coach, {2001, 2001}).size(), 2u);
  // Unknown predicate: empty answer, no lazy index build.
  TermId ghost = g.dict().InternIri("neverUsedAsPredicate");
  EXPECT_TRUE(g.FactsIntersecting(ghost, {0, 10}).empty());
}

TEST(RdfIo, ParallelLoadIsByteIdenticalToSerial) {
  // A document big enough to span several 256 KiB chunks, with comments
  // and blank lines so per-chunk line accounting is exercised.
  std::string text = "# synthetic multi-chunk document\n\n";
  for (int i = 0; i < 30000; ++i) {
    text += "player" + std::to_string(i % 500) + " playsFor team" +
            std::to_string(i) + " [" + std::to_string(i % 50) + "," +
            std::to_string(i % 50 + 3) + "] 0.7" +
            (i % 7 == 0 ? " . # spell\n" : " .\n");
  }
  auto serial = ParseGraphText(text);
  ASSERT_TRUE(serial.ok());
  const std::string canonical = WriteGraphText(*serial);
  for (int threads : {1, 2, 4, 0}) {
    ParseOptions options;
    options.num_threads = threads;
    auto parallel = ParseGraphText(text, options);
    ASSERT_TRUE(parallel.ok());
    EXPECT_EQ(parallel->NumFacts(), serial->NumFacts());
    // Same fact ids, same bytes: chunk boundaries depend on the input
    // alone and appends happen in chunk order.
    EXPECT_EQ(WriteGraphText(*parallel), canonical)
        << "serialized graph differs at num_threads=" << threads;
  }
}

TEST(RdfIo, ParallelLoadReportsEarliestErrorLine) {
  // Errors in two different chunks: the globally earliest line wins,
  // matching the serial parser's message exactly.
  std::string text;
  for (int i = 0; i < 20000; ++i) {
    text += "s" + std::to_string(i) + " p o [1,2] 0.5 .\n";
    if (i == 7001) text += "broken line without interval\n";
    if (i == 15000) text += "another bad one\n";
  }
  ParseOptions options;
  options.num_threads = 4;
  auto parallel = ParseGraphText(text, options);
  ASSERT_FALSE(parallel.ok());
  auto serial = ParseGraphText(text);
  ASSERT_FALSE(serial.ok());
  EXPECT_EQ(parallel.status().message(), serial.status().message());
  EXPECT_NE(parallel.status().message().find("line 7003"),
            std::string::npos)
      << parallel.status().message();
}

TEST(RdfIo, FileRoundTrip) {
  auto graph = ParseGraphText("CR coach Chelsea [2000,2004] 0.9 .\n");
  ASSERT_TRUE(graph.ok());
  const std::string path = ::testing::TempDir() + "/tecore_io_test.tq";
  ASSERT_TRUE(SaveGraphFile(*graph, path).ok());
  auto loaded = LoadGraphFile(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->NumFacts(), 1u);
  EXPECT_FALSE(LoadGraphFile("/nonexistent/path.tq").ok());
}

}  // namespace
}  // namespace rdf
}  // namespace tecore
