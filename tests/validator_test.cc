#include <gtest/gtest.h>

#include "rules/library.h"
#include "rules/parser.h"
#include "rules/validator.h"

namespace tecore {
namespace rules {
namespace {

Rule MustParse(const std::string& text) {
  auto rule = ParseSingleRule(text);
  EXPECT_TRUE(rule.ok()) << rule.status().ToString() << " in: " << text;
  return rule.ok() ? *rule : Rule{};
}

TEST(Validator, AcceptsThePaperRules) {
  auto inference = PaperInferenceRules();
  auto constraints = PaperConstraints();
  ASSERT_TRUE(inference.ok());
  ASSERT_TRUE(constraints.ok());
  for (const Rule& rule : inference->rules) {
    EXPECT_TRUE(ValidateForSolver(rule, SolverKind::kMln).ok()) << rule.ToString();
    EXPECT_TRUE(ValidateForSolver(rule, SolverKind::kPsl).ok()) << rule.ToString();
  }
  for (const Rule& rule : constraints->rules) {
    EXPECT_TRUE(ValidateForSolver(rule, SolverKind::kMln).ok());
    EXPECT_TRUE(ValidateForSolver(rule, SolverKind::kPsl).ok());
  }
}

TEST(Validator, RejectsHeadVariableNotInBody) {
  Rule rule = MustParse(
      "quad(x, coach, y, t) -> quad(x, coach, z, t) w = 1 .");
  Status st = ValidateRule(rule);
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("'z'"), std::string::npos);
}

TEST(Validator, RejectsConditionVariableNotInBody) {
  Rule rule = MustParse(
      "quad(x, coach, y, t) [y != q] -> false .");
  // q is a condition-introduced entity var never bound by the body.
  EXPECT_FALSE(ValidateRule(rule).ok());
}

TEST(Validator, RejectsNegativeWeights) {
  Rule rule = MustParse(
      "quad(x, coach, y, t) -> quad(x, worksFor, y, t) w = 1 .");
  rule.weight = -2.0;
  Status st = ValidateRule(rule);
  EXPECT_EQ(st.code(), StatusCode::kUnsupported);
}

TEST(Validator, RejectsIntervalExpressionOverUnboundVars) {
  // First body atom's time is an expression over t' which binds later.
  Rule rule = MustParse(
      "quad(x, coach, y, t ^ t') & quad(x, coach, z, t') -> false .");
  EXPECT_FALSE(ValidateRule(rule).ok());
}

TEST(Validator, AcceptsIntervalExpressionOverBoundVars) {
  Rule rule = MustParse(
      "quad(x, coach, y, t) & quad(x, coach, z, t') & "
      "quad(x, managed, w, t ^ t') -> false .");
  EXPECT_TRUE(ValidateRule(rule).ok());
}

TEST(Validator, PslRejectsDisjunctiveHeads) {
  Rule rule = MustParse(
      "quad(x, memberOf, y, t) -> quad(x, worksFor, y, t) | "
      "quad(x, advises, y, t) w = 1 .");
  EXPECT_TRUE(ValidateForSolver(rule, SolverKind::kMln).ok());
  Status st = ValidateForSolver(rule, SolverKind::kPsl);
  EXPECT_EQ(st.code(), StatusCode::kUnsupported);
}

TEST(Validator, RuleSetAnnotatesRuleIndex) {
  auto set = ParseRules(R"(
    quad(x, coach, y, t) -> quad(x, worksFor, y, t) w = 1 .
    quad(x, coach, y, t) -> quad(x, coach, z, t) w = 1 .
  )");
  ASSERT_TRUE(set.ok());
  Status st = ValidateRuleSet(*set, SolverKind::kMln);
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("#2"), std::string::npos);
}

TEST(Validator, CollectProblemsListsAll) {
  auto set = ParseRules(R"(
    quad(x, coach, y, t) -> quad(x, coach, z, t) w = 1 .
    quad(x, coach, y, t) -> quad(q, coach, y, t) w = 1 .
    quad(x, coach, y, t) -> quad(x, worksFor, y, t) w = 1 .
  )");
  ASSERT_TRUE(set.ok());
  auto problems = CollectProblems(*set, SolverKind::kMln);
  EXPECT_EQ(problems.size(), 2u);
  EXPECT_TRUE(CollectProblems(*set, SolverKind::kMln).size() ==
              CollectProblems(*set, SolverKind::kPsl).size());
}

TEST(Validator, SolverKindNames) {
  EXPECT_EQ(SolverKindName(SolverKind::kMln), "mln");
  EXPECT_EQ(SolverKindName(SolverKind::kPsl), "psl");
}

}  // namespace
}  // namespace rules
}  // namespace tecore
