// tecore-server integration: real sockets against an in-process
// HttpServer on an ephemeral port — the full paper workflow (load graph →
// add rules → solve → edit → browse) over HTTP, plus protocol edges
// (404/405/400, keep-alive, concurrent clients during writes).

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "api/engine.h"
#include "server/http_server.h"
#include "server/routes.h"
#include "util/json.h"
#include "util/string_util.h"

namespace tecore {
namespace server {
namespace {

/// Blocking one-shot HTTP client: send `request` bytes, read to EOF.
std::string RawRequest(int port, const std::string& request) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    return "";
  }
  size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n =
        ::send(fd, request.data() + sent, request.size() - sent, 0);
    if (n <= 0) break;
    sent += static_cast<size_t>(n);
  }
  std::string response;
  char chunk[4096];
  ssize_t n;
  while ((n = ::recv(fd, chunk, sizeof(chunk), 0)) > 0) {
    response.append(chunk, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

std::string Http(int port, const std::string& method, const std::string& path,
                 const std::string& body = "") {
  return RawRequest(
      port, StringPrintf("%s %s HTTP/1.1\r\nHost: t\r\nContent-Length: "
                         "%zu\r\nConnection: close\r\n\r\n%s",
                         method.c_str(), path.c_str(), body.size(),
                         body.c_str()));
}

int StatusOf(const std::string& response) {
  int status = 0;
  std::sscanf(response.c_str(), "HTTP/1.1 %d", &status);
  return status;
}

util::Json BodyOf(const std::string& response) {
  const size_t split = response.find("\r\n\r\n");
  EXPECT_NE(split, std::string::npos) << response;
  auto parsed = util::Json::Parse(
      Trim(std::string_view(response).substr(split + 4)));
  EXPECT_TRUE(parsed.ok()) << parsed.status().ToString() << "\n" << response;
  return parsed.ok() ? *parsed : util::Json::Null();
}

class ServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    HttpServer::Options options;
    options.port = 0;  // ephemeral
    options.num_threads = 4;
    server_ = std::make_unique<HttpServer>(options, MakeApiHandler(&engine_));
    auto port = server_->Start();
    ASSERT_TRUE(port.ok()) << port.status().ToString();
    port_ = *port;
  }

  void TearDown() override { server_->Stop(); }

  api::Engine engine_;
  std::unique_ptr<HttpServer> server_;
  int port_ = 0;
};

TEST_F(ServerTest, FullPaperWorkflowOverHttp) {
  // 1. select a UTKG.
  util::Json graph = BodyOf(Http(
      port_, "POST", "/v1/graph",
      "{\"text\":\"CR coach Chelsea [2000,2004] 0.9 .\\n"
      "CR coach Leicester [2015,2017] 0.7 .\\n"
      "CR playsFor Palermo [1984,1986] 0.5 .\\n"
      "CR birthDate 1951 [1951,2017] 1.0 .\\n"
      "CR coach Napoli [2001,2003] 0.6 .\\n\"}"));
  EXPECT_EQ(graph.GetInt("num_facts", -1), 5);
  EXPECT_EQ(graph.GetInt("version", -1), 1);

  // 2. rules, with predicate auto-completion.
  util::Json complete =
      BodyOf(Http(port_, "GET", "/v1/complete?prefix=coa"));
  ASSERT_EQ(complete.Find("completions")->items().size(), 1u);
  EXPECT_EQ(complete.Find("completions")->items()[0].string_value(),
            "coach");
  util::Json rules = BodyOf(Http(
      port_, "POST", "/v1/rules",
      "{\"text\":\"c2: quad(x, coach, y, t) & quad(x, coach, z, t') & "
      "y != z -> disjoint(t, t') .\"}"));
  EXPECT_EQ(rules.GetInt("added", -1), 1);
  EXPECT_EQ(rules.GetInt("num_rules", -1), 1);

  // 3. compute: conflicts, then the most probable conflict-free KG.
  util::Json conflicts = BodyOf(Http(port_, "GET", "/v1/conflicts"));
  EXPECT_EQ(conflicts.GetInt("num_conflicts", -1), 1);
  util::Json solve =
      BodyOf(Http(port_, "POST", "/v1/solve", "{\"solver\":\"mln\"}"));
  EXPECT_TRUE(solve.GetBool("feasible", false));
  EXPECT_EQ(solve.GetInt("removed", -1), 1);
  ASSERT_EQ(solve.Find("removed_facts")->items().size(), 1u);
  EXPECT_NE(solve.Find("removed_facts")->items()[0].string_value().find(
                "Napoli"),
            std::string::npos);

  // Edits: incremental re-solve over HTTP.
  util::Json edits = BodyOf(
      Http(port_, "POST", "/v1/edits",
           "{\"script\":\"+ CR coach Bari [2006,2008] 0.5 .\\n\"}"));
  EXPECT_EQ(edits.GetInt("inserted", -1), 1);
  EXPECT_GT(edits.GetInt("version", -1), solve.GetInt("version", -1));
  EXPECT_TRUE(edits.GetBool("feasible", false));

  // 4. browse statistics and suggestions.
  util::Json stats = BodyOf(Http(port_, "GET", "/v1/stats"));
  EXPECT_EQ(stats.Find("stats")->GetInt("num_facts", -1), 6);
  util::Json suggest = BodyOf(Http(port_, "GET", "/v1/suggest"));
  EXPECT_NE(suggest.Find("suggestions"), nullptr);
  util::Json info = BodyOf(Http(port_, "GET", "/v1/graph"));
  EXPECT_TRUE(info.GetBool("has_result", false));
}

TEST_F(ServerTest, ProtocolEdges) {
  EXPECT_EQ(StatusOf(Http(port_, "GET", "/v1/nope")), 404);
  EXPECT_EQ(StatusOf(Http(port_, "DELETE", "/v1/solve")), 405);
  EXPECT_EQ(StatusOf(Http(port_, "POST", "/v1/graph", "{oops")), 400);
  EXPECT_EQ(StatusOf(Http(port_, "POST", "/v1/graph", "{}")), 400);
  EXPECT_EQ(StatusOf(Http(port_, "GET", "/v1/stats")), 400);  // no graph
  EXPECT_EQ(StatusOf(Http(port_, "POST", "/v1/solve")), 400);  // no graph
  // Errors carry a machine-readable code.
  EXPECT_EQ(BodyOf(Http(port_, "GET", "/v1/nope")).GetString("code", ""),
            "NotFound");
  // Chunked bodies are rejected explicitly (501), never mis-framed.
  const std::string chunked = RawRequest(
      port_,
      "POST /v1/graph HTTP/1.1\r\nHost: t\r\n"
      "Transfer-Encoding: chunked\r\n\r\n5\r\nhello\r\n0\r\n\r\n");
  EXPECT_EQ(StatusOf(chunked), 501) << chunked;
}

TEST_F(ServerTest, KeepAliveServesSequentialRequests) {
  ASSERT_TRUE(engine_.LoadGraphText("a p b [1,2] 0.9 .").ok());
  const std::string two =
      "GET /v1/graph HTTP/1.1\r\nHost: t\r\n\r\n"
      "GET /v1/graph HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n";
  const std::string response = RawRequest(port_, two);
  // Two complete responses on one connection.
  size_t first = response.find("HTTP/1.1 200");
  ASSERT_NE(first, std::string::npos);
  EXPECT_NE(response.find("HTTP/1.1 200", first + 1), std::string::npos);
}

TEST_F(ServerTest, ConcurrentReadsDuringWrites) {
  ASSERT_TRUE(engine_.LoadGraphText(R"(
    CR coach Chelsea [2000,2004] 0.9 .
    CR coach Napoli [2001,2003] 0.6 .
  )")
                  .ok());
  ASSERT_TRUE(engine_
                  .AddRulesText(
                      "c2: quad(x, coach, y, t) & quad(x, coach, z, t') & "
                      "y != z -> disjoint(t, t') .")
                  .ok());
  std::vector<std::thread> clients;
  std::atomic<int> failures{0};
  for (int t = 0; t < 3; ++t) {
    clients.emplace_back([this, &failures] {
      for (int i = 0; i < 10; ++i) {
        const std::string response = Http(port_, "GET", "/v1/graph");
        if (StatusOf(response) != 200) {
          ++failures;
          return;
        }
        util::Json body = BodyOf(response);
        // Self-consistency: live facts reported by a snapshot never
        // disagree with its own fact count fields.
        if (body.GetInt("num_live_facts", -1) >
            body.GetInt("num_facts", -2)) {
          ++failures;
          return;
        }
      }
    });
  }
  for (int b = 0; b < 5; ++b) {
    const std::string script = StringPrintf(
        "{\"script\":\"+ CR coach club%d [%d,%d] 0.5 .\\n\"}", b, 2006 + b,
        2007 + b);
    EXPECT_EQ(StatusOf(Http(port_, "POST", "/v1/edits", script)), 200);
  }
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST_F(ServerTest, StopIsIdempotentAndClean) {
  server_->Stop();
  server_->Stop();  // second stop is a no-op
}

}  // namespace
}  // namespace server
}  // namespace tecore
