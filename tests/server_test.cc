// tecore-server integration: real sockets against an in-process
// HttpServer on an ephemeral port — the full paper workflow (load graph →
// add rules → solve → edit → browse) over HTTP, the multi-tenant layer
// (KB lifecycle, isolation, legacy-path deprecation, bearer-token auth,
// SSE subscriptions, chunked request bodies) and protocol edges
// (404/405/400/401/403/501 with the uniform error envelope, keep-alive,
// concurrent clients during writes).

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "api/registry.h"
#include "server/http_server.h"
#include "server/routes.h"
#include "util/json.h"
#include "util/string_util.h"

namespace tecore {
namespace server {
namespace {

int Connect(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

/// Blocking one-shot HTTP client: send `request` bytes, read to EOF.
std::string RawRequest(int port, const std::string& request) {
  const int fd = Connect(port);
  if (fd < 0) return "";
  size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n =
        ::send(fd, request.data() + sent, request.size() - sent, 0);
    if (n <= 0) break;
    sent += static_cast<size_t>(n);
  }
  std::string response;
  char chunk[4096];
  ssize_t n;
  while ((n = ::recv(fd, chunk, sizeof(chunk), 0)) > 0) {
    response.append(chunk, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

std::string Http(int port, const std::string& method, const std::string& path,
                 const std::string& body = "",
                 const std::string& extra_headers = "") {
  return RawRequest(
      port, StringPrintf("%s %s HTTP/1.1\r\nHost: t\r\n%sContent-Length: "
                         "%zu\r\nConnection: close\r\n\r\n%s",
                         method.c_str(), path.c_str(), extra_headers.c_str(),
                         body.size(), body.c_str()));
}

int StatusOf(const std::string& response) {
  int status = 0;
  std::sscanf(response.c_str(), "HTTP/1.1 %d", &status);
  return status;
}

bool HasHeader(const std::string& response, const std::string& line) {
  const size_t split = response.find("\r\n\r\n");
  return response.substr(0, split).find(line) != std::string::npos;
}

util::Json BodyOf(const std::string& response) {
  const size_t split = response.find("\r\n\r\n");
  EXPECT_NE(split, std::string::npos) << response;
  auto parsed = util::Json::Parse(
      Trim(std::string_view(response).substr(split + 4)));
  EXPECT_TRUE(parsed.ok()) << parsed.status().ToString() << "\n" << response;
  return parsed.ok() ? *parsed : util::Json::Null();
}

/// The uniform failure shape: {"error": {"code", "message"}}.
std::string ErrorCodeOf(const util::Json& body) {
  const util::Json* error = body.Find("error");
  if (error == nullptr || !error->is_object()) return "<no error object>";
  if (error->Find("message") == nullptr) return "<no message>";
  return error->GetString("code", "<no code>");
}

/// Raw (non-JSON) response body — used for /metrics exposition text.
std::string TextBodyOf(const std::string& response) {
  const size_t split = response.find("\r\n\r\n");
  return split == std::string::npos ? std::string()
                                    : response.substr(split + 4);
}

/// Value of one exposition line, e.g.
/// MetricValue(text, "tecore_kb_facts{kb=\"default\"}"). -1 if absent.
/// The default registry is process-global, so tests assert deltas of
/// cumulative series between two scrapes, not absolute values.
long long MetricValue(const std::string& exposition,
                      const std::string& series) {
  const std::string needle = series + " ";
  size_t pos = 0;
  while ((pos = exposition.find(needle, pos)) != std::string::npos) {
    if (pos == 0 || exposition[pos - 1] == '\n') {
      return std::stoll(exposition.substr(pos + needle.size()));
    }
    pos += 1;
  }
  return -1;
}

class ServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto created = registry_.Create("default");
    ASSERT_TRUE(created.ok()) << created.status().ToString();
    engine_ = *created;
    HttpServer::Options options;
    options.port = 0;  // ephemeral
    options.num_threads = 6;
    server_ =
        std::make_unique<HttpServer>(options, MakeApiHandler(&registry_));
    auto port = server_->Start();
    ASSERT_TRUE(port.ok()) << port.status().ToString();
    port_ = *port;
  }

  void TearDown() override { server_->Stop(); }

  api::EngineRegistry registry_;
  std::shared_ptr<api::Engine> engine_;  // the default KB
  std::unique_ptr<HttpServer> server_;
  int port_ = 0;
};

TEST_F(ServerTest, FullPaperWorkflowOverHttp) {
  // 1. select a UTKG (legacy single-KB path → default KB).
  util::Json graph = BodyOf(Http(
      port_, "POST", "/v1/graph",
      "{\"text\":\"CR coach Chelsea [2000,2004] 0.9 .\\n"
      "CR coach Leicester [2015,2017] 0.7 .\\n"
      "CR playsFor Palermo [1984,1986] 0.5 .\\n"
      "CR birthDate 1951 [1951,2017] 1.0 .\\n"
      "CR coach Napoli [2001,2003] 0.6 .\\n\"}"));
  EXPECT_EQ(graph.GetInt("num_facts", -1), 5);
  EXPECT_EQ(graph.GetInt("version", -1), 1);

  // 2. rules, with predicate auto-completion.
  util::Json complete =
      BodyOf(Http(port_, "GET", "/v1/complete?prefix=coa"));
  ASSERT_EQ(complete.Find("completions")->items().size(), 1u);
  EXPECT_EQ(complete.Find("completions")->items()[0].string_value(),
            "coach");
  util::Json rules = BodyOf(Http(
      port_, "POST", "/v1/rules",
      "{\"text\":\"c2: quad(x, coach, y, t) & quad(x, coach, z, t') & "
      "y != z -> disjoint(t, t') .\"}"));
  EXPECT_EQ(rules.GetInt("added", -1), 1);
  EXPECT_EQ(rules.GetInt("num_rules", -1), 1);

  // 3. compute: conflicts, then the most probable conflict-free KG.
  util::Json conflicts = BodyOf(Http(port_, "GET", "/v1/conflicts"));
  EXPECT_EQ(conflicts.GetInt("num_conflicts", -1), 1);
  util::Json solve =
      BodyOf(Http(port_, "POST", "/v1/solve", "{\"solver\":\"mln\"}"));
  EXPECT_TRUE(solve.GetBool("feasible", false));
  EXPECT_EQ(solve.GetInt("removed", -1), 1);
  ASSERT_EQ(solve.Find("removed_facts")->items().size(), 1u);
  EXPECT_NE(solve.Find("removed_facts")->items()[0].string_value().find(
                "Napoli"),
            std::string::npos);

  // Edits: incremental re-solve over HTTP.
  util::Json edits = BodyOf(
      Http(port_, "POST", "/v1/edits",
           "{\"script\":\"+ CR coach Bari [2006,2008] 0.5 .\\n\"}"));
  EXPECT_EQ(edits.GetInt("inserted", -1), 1);
  EXPECT_GT(edits.GetInt("version", -1), solve.GetInt("version", -1));
  EXPECT_TRUE(edits.GetBool("feasible", false));

  // 4. browse statistics and suggestions.
  util::Json stats = BodyOf(Http(port_, "GET", "/v1/stats"));
  EXPECT_EQ(stats.Find("stats")->GetInt("num_facts", -1), 6);
  util::Json suggest = BodyOf(Http(port_, "GET", "/v1/suggest"));
  EXPECT_NE(suggest.Find("suggestions"), nullptr);
  util::Json info = BodyOf(Http(port_, "GET", "/v1/graph"));
  EXPECT_TRUE(info.GetBool("has_result", false));

  // The same workflow is reachable at the tenant-scoped successor path.
  util::Json scoped = BodyOf(Http(port_, "GET", "/v1/kb/default/graph"));
  EXPECT_EQ(scoped.GetInt("num_facts", -1), 6);
}

TEST_F(ServerTest, LegacyPathsCarryDeprecationHeaders) {
  ASSERT_TRUE(engine_->LoadGraphText("a p b [1,2] 0.9 .").ok());
  const std::string legacy = Http(port_, "GET", "/v1/graph");
  EXPECT_EQ(StatusOf(legacy), 200);
  EXPECT_TRUE(HasHeader(legacy, "Deprecation: true")) << legacy;
  EXPECT_TRUE(HasHeader(
      legacy, "Link: </v1/kb/default/graph>; rel=\"successor-version\""))
      << legacy;
  // The successor path answers identically, without the deprecation mark.
  const std::string scoped = Http(port_, "GET", "/v1/kb/default/graph");
  EXPECT_EQ(StatusOf(scoped), 200);
  EXPECT_FALSE(HasHeader(scoped, "Deprecation: true")) << scoped;
  EXPECT_EQ(BodyOf(legacy).GetInt("num_facts", -1),
            BodyOf(scoped).GetInt("num_facts", -1));
}

TEST_F(ServerTest, KbLifecycleAndIsolation) {
  // Create two tenants.
  const std::string created = Http(port_, "POST", "/v1/kb",
                                   "{\"name\":\"alpha\"}");
  EXPECT_EQ(StatusOf(created), 201);
  EXPECT_EQ(BodyOf(created).GetString("kb", ""), "alpha");
  EXPECT_EQ(StatusOf(Http(port_, "POST", "/v1/kb", "{\"name\":\"beta\"}")),
            201);

  // Duplicate and malformed names are rejected.
  EXPECT_EQ(StatusOf(Http(port_, "POST", "/v1/kb", "{\"name\":\"alpha\"}")),
            409);
  EXPECT_EQ(StatusOf(Http(port_, "POST", "/v1/kb", "{\"name\":\"no/slash\"}")),
            400);
  EXPECT_EQ(StatusOf(Http(port_, "POST", "/v1/kb", "{}")), 400);

  // Independent contents and versions.
  EXPECT_EQ(StatusOf(Http(port_, "POST", "/v1/kb/alpha/graph",
                          "{\"text\":\"a p b [1,2] 0.9 .\\n"
                          "a p c [3,4] 0.8 .\\n\"}")),
            200);
  EXPECT_EQ(StatusOf(Http(port_, "POST", "/v1/kb/beta/graph",
                          "{\"text\":\"x q y [1,9] 0.5 .\\n\"}")),
            200);
  util::Json alpha = BodyOf(Http(port_, "GET", "/v1/kb/alpha/graph"));
  util::Json beta = BodyOf(Http(port_, "GET", "/v1/kb/beta/graph"));
  EXPECT_EQ(alpha.GetInt("num_facts", -1), 2);
  EXPECT_EQ(beta.GetInt("num_facts", -1), 1);
  EXPECT_EQ(alpha.GetInt("version", -1), 1);
  EXPECT_EQ(beta.GetInt("version", -1), 1);

  // Editing alpha must not bump beta's version.
  EXPECT_EQ(StatusOf(Http(port_, "POST", "/v1/kb/alpha/edits",
                          "{\"script\":\"+ a p d [5,6] 0.7 .\\n\"}")),
            200);
  EXPECT_EQ(BodyOf(Http(port_, "GET", "/v1/kb/alpha/graph"))
                .GetInt("version", -1),
            2);
  EXPECT_EQ(BodyOf(Http(port_, "GET", "/v1/kb/beta/graph"))
                .GetInt("version", -1),
            1);

  // List shows all three, sorted.
  util::Json list = BodyOf(Http(port_, "GET", "/v1/kb"));
  ASSERT_EQ(list.GetInt("num_kbs", -1), 3);
  const auto& kbs = list.Find("kbs")->items();
  EXPECT_EQ(kbs[0].GetString("kb", ""), "alpha");
  EXPECT_EQ(kbs[1].GetString("kb", ""), "beta");
  EXPECT_EQ(kbs[2].GetString("kb", ""), "default");

  // Delete beta: gone afterwards, alpha untouched.
  EXPECT_EQ(StatusOf(Http(port_, "DELETE", "/v1/kb/beta")), 200);
  EXPECT_EQ(StatusOf(Http(port_, "GET", "/v1/kb/beta/graph")), 404);
  EXPECT_EQ(StatusOf(Http(port_, "DELETE", "/v1/kb/beta")), 404);
  EXPECT_EQ(StatusOf(Http(port_, "GET", "/v1/kb/alpha/graph")), 200);
  EXPECT_EQ(BodyOf(Http(port_, "GET", "/v1/kb")).GetInt("num_kbs", -1), 2);
}

TEST_F(ServerTest, ErrorEnvelopeIsUniform) {
  // 404 — unknown endpoint and unknown KB.
  util::Json nf = BodyOf(Http(port_, "GET", "/v1/nope"));
  EXPECT_EQ(ErrorCodeOf(nf), "NotFound");
  EXPECT_EQ(ErrorCodeOf(BodyOf(Http(port_, "GET", "/v1/kb/ghost/stats"))),
            "NotFound");
  // 405 — wrong method.
  const std::string mna = Http(port_, "DELETE", "/v1/solve");
  EXPECT_EQ(StatusOf(mna), 405);
  EXPECT_EQ(ErrorCodeOf(BodyOf(mna)), "MethodNotAllowed");
  EXPECT_TRUE(HasHeader(mna, "Allow: POST")) << mna;
  // 400 — malformed JSON and domain validation.
  util::Json bad = BodyOf(Http(port_, "POST", "/v1/graph", "{oops"));
  EXPECT_EQ(ErrorCodeOf(bad), "ParseError");
  EXPECT_EQ(ErrorCodeOf(BodyOf(Http(port_, "POST", "/v1/graph", "{}"))),
            "InvalidArgument");
  EXPECT_EQ(StatusOf(Http(port_, "GET", "/v1/stats")), 400);  // no graph
  EXPECT_EQ(StatusOf(Http(port_, "POST", "/v1/solve")), 400);  // no graph
  // 501 — transfer encodings we must not guess at.
  const std::string gzip = RawRequest(
      port_,
      "POST /v1/graph HTTP/1.1\r\nHost: t\r\n"
      "Transfer-Encoding: gzip\r\n\r\n");
  EXPECT_EQ(StatusOf(gzip), 501) << gzip;
  EXPECT_EQ(ErrorCodeOf(BodyOf(gzip)), "Unsupported");
}

TEST_F(ServerTest, AuthTokenGate) {
  // A second server with auth on, against the same registry.
  RouterOptions router;
  router.auth_token = "s3cret";
  HttpServer::Options options;
  options.port = 0;
  options.num_threads = 2;
  HttpServer secured(options, MakeApiHandler(&registry_, router));
  auto port = secured.Start();
  ASSERT_TRUE(port.ok());

  // 401 without credentials (uniform envelope + WWW-Authenticate).
  const std::string anon = Http(*port, "GET", "/v1/kb");
  EXPECT_EQ(StatusOf(anon), 401);
  EXPECT_EQ(ErrorCodeOf(BodyOf(anon)), "Unauthenticated");
  EXPECT_TRUE(HasHeader(anon, "WWW-Authenticate: Bearer")) << anon;
  // 401 for a non-bearer scheme.
  EXPECT_EQ(StatusOf(Http(*port, "GET", "/v1/kb", "",
                          "Authorization: Basic dXNlcjpwYXNz\r\n")),
            401);
  // 403 for a wrong token.
  const std::string wrong =
      Http(*port, "GET", "/v1/kb", "", "Authorization: Bearer nope\r\n");
  EXPECT_EQ(StatusOf(wrong), 403);
  EXPECT_EQ(ErrorCodeOf(BodyOf(wrong)), "PermissionDenied");
  // 200 with the right token (scheme is case-insensitive).
  EXPECT_EQ(StatusOf(Http(*port, "GET", "/v1/kb", "",
                          "Authorization: Bearer s3cret\r\n")),
            200);
  EXPECT_EQ(StatusOf(Http(*port, "GET", "/v1/kb", "",
                          "Authorization: bearer s3cret\r\n")),
            200);
  secured.Stop();
}

TEST_F(ServerTest, ChunkedRequestBodiesAreDecoded) {
  ASSERT_EQ(StatusOf(Http(port_, "POST", "/v1/kb", "{\"name\":\"bulk\"}")),
            201);
  // A chunked POST /v1/kb/bulk/graph split mid-JSON across three chunks,
  // with a chunk extension and a trailer — the framing a streaming bulk
  // loader would produce.
  const std::string part1 = "{\"text\":\"a p b [1,2] 0.9 .\\n";
  const std::string part2 = "a p c [3,4] 0.8 .\\n";
  const std::string part3 = "\"}";
  std::string request =
      "POST /v1/kb/bulk/graph HTTP/1.1\r\nHost: t\r\n"
      "Transfer-Encoding: chunked\r\nConnection: close\r\n\r\n";
  request += StringPrintf("%zx;note=ext-ignored\r\n%s\r\n", part1.size(),
                          part1.c_str());
  request += StringPrintf("%zx\r\n%s\r\n", part2.size(), part2.c_str());
  request += StringPrintf("%zx\r\n%s\r\n", part3.size(), part3.c_str());
  request += "0\r\nX-Trailer: ignored\r\n\r\n";
  const std::string response = RawRequest(port_, request);
  EXPECT_EQ(StatusOf(response), 200) << response;
  EXPECT_EQ(BodyOf(response).GetInt("num_facts", -1), 2);

  // Keep-alive framing survives a chunked request: a second request on
  // the same connection still parses.
  std::string two =
      "POST /v1/kb/bulk/rules HTTP/1.1\r\nHost: t\r\n"
      "Transfer-Encoding: chunked\r\n\r\n";
  const std::string rules_body =
      "{\"text\":\"c1: quad(x, p, y, t) & quad(x, p, z, t') & y != z -> "
      "disjoint(t, t') .\"}";
  two += StringPrintf("%zx\r\n%s\r\n0\r\n\r\n", rules_body.size(),
                      rules_body.c_str());
  two +=
      "GET /v1/kb/bulk/graph HTTP/1.1\r\nHost: t\r\nConnection: close\r\n"
      "\r\n";
  const std::string pipelined = RawRequest(port_, two);
  size_t first = pipelined.find("HTTP/1.1 200");
  ASSERT_NE(first, std::string::npos) << pipelined;
  EXPECT_NE(pipelined.find("HTTP/1.1 200", first + 1), std::string::npos)
      << pipelined;
}

TEST_F(ServerTest, KeepAliveServesSequentialRequests) {
  ASSERT_TRUE(engine_->LoadGraphText("a p b [1,2] 0.9 .").ok());
  const std::string two =
      "GET /v1/graph HTTP/1.1\r\nHost: t\r\n\r\n"
      "GET /v1/graph HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n";
  const std::string response = RawRequest(port_, two);
  // Two complete responses on one connection.
  size_t first = response.find("HTTP/1.1 200");
  ASSERT_NE(first, std::string::npos);
  EXPECT_NE(response.find("HTTP/1.1 200", first + 1), std::string::npos);
}

TEST_F(ServerTest, ConcurrentReadsDuringWrites) {
  ASSERT_TRUE(engine_->LoadGraphText(R"(
    CR coach Chelsea [2000,2004] 0.9 .
    CR coach Napoli [2001,2003] 0.6 .
  )")
                  .ok());
  ASSERT_TRUE(engine_
                  ->AddRulesText(
                      "c2: quad(x, coach, y, t) & quad(x, coach, z, t') & "
                      "y != z -> disjoint(t, t') .")
                  .ok());
  std::vector<std::thread> clients;
  std::atomic<int> failures{0};
  for (int t = 0; t < 3; ++t) {
    clients.emplace_back([this, &failures] {
      for (int i = 0; i < 10; ++i) {
        const std::string response = Http(port_, "GET", "/v1/graph");
        if (StatusOf(response) != 200) {
          ++failures;
          return;
        }
        util::Json body = BodyOf(response);
        // Self-consistency: live facts reported by a snapshot never
        // disagree with its own fact count fields.
        if (body.GetInt("num_live_facts", -1) >
            body.GetInt("num_facts", -2)) {
          ++failures;
          return;
        }
      }
    });
  }
  for (int b = 0; b < 5; ++b) {
    const std::string script = StringPrintf(
        "{\"script\":\"+ CR coach club%d [%d,%d] 0.5 .\\n\"}", b, 2006 + b,
        2007 + b);
    EXPECT_EQ(StatusOf(Http(port_, "POST", "/v1/edits", script)), 200);
  }
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);
}

// ---------------------------------------------------------------- SSE

/// Incremental SSE reader: collects complete `\n\n`-terminated frames.
struct SseReader {
  int fd = -1;
  std::string buffer;

  bool Open(int port, const std::string& path) {
    fd = Connect(port);
    if (fd < 0) return false;
    const std::string request = StringPrintf(
        "GET %s HTTP/1.1\r\nHost: t\r\nAccept: text/event-stream\r\n\r\n",
        path.c_str());
    return ::send(fd, request.data(), request.size(), 0) ==
           static_cast<ssize_t>(request.size());
  }

  /// Blocks until one more frame (headers skipped) or EOF; empty = EOF.
  /// Comment frames (keep-alives, `: skip <v>` suppressions) are dropped
  /// unless `keep_comments` is set.
  std::string NextFrame(bool keep_comments = false) {
    for (;;) {
      // Strip the response headers once.
      const size_t head = buffer.find("\r\n\r\n");
      if (head != std::string::npos) buffer.erase(0, head + 4);
      const size_t frame_end = buffer.find("\n\n");
      if (frame_end != std::string::npos) {
        std::string frame = buffer.substr(0, frame_end);
        buffer.erase(0, frame_end + 2);
        if (!keep_comments && frame.rfind(":", 0) == 0) continue;
        return frame;
      }
      char chunk[4096];
      const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
      if (n <= 0) return "";
      buffer.append(chunk, static_cast<size_t>(n));
    }
  }

  void Close() {
    if (fd >= 0) ::close(fd);
    fd = -1;
  }
};

size_t CountOf(const std::string& haystack, const std::string& needle) {
  size_t count = 0;
  for (size_t at = haystack.find(needle); at != std::string::npos;
       at = haystack.find(needle, at + needle.size())) {
    ++count;
  }
  return count;
}

int64_t VersionOf(const std::string& frame) {
  const size_t data = frame.find("data: ");
  if (data == std::string::npos) return -1;
  auto parsed = util::Json::Parse(
      Trim(std::string_view(frame).substr(data + 6)));
  if (!parsed.ok()) return -1;
  return parsed->GetInt("version", -1);
}

TEST_F(ServerTest, SseSubscriberSeesEveryVersionInOrder) {
  ASSERT_EQ(StatusOf(Http(port_, "POST", "/v1/kb", "{\"name\":\"live\"}")),
            201);
  ASSERT_EQ(StatusOf(Http(port_, "POST", "/v1/kb/live/graph",
                          "{\"text\":\"a p b [1,2] 0.9 .\\n\"}")),
            200);

  SseReader reader;
  ASSERT_TRUE(reader.Open(port_, "/v1/kb/live/subscribe"));
  // The initial event is the snapshot current at subscribe time; reading
  // it first also guarantees the subscription is registered before any
  // of the edits below publish.
  const std::string initial = reader.NextFrame();
  ASSERT_NE(initial, "");
  EXPECT_NE(initial.find("event: snapshot"), std::string::npos) << initial;
  const int64_t base = VersionOf(initial);
  ASSERT_GE(base, 1);

  // A 10-batch edit stream; every batch publishes exactly one version.
  for (int b = 0; b < 10; ++b) {
    const std::string script = StringPrintf(
        "{\"script\":\"+ a p c%d [%d,%d] 0.5 .\\n\"}", b, 10 + b, 11 + b);
    ASSERT_EQ(StatusOf(Http(port_, "POST", "/v1/kb/live/edits", script)),
              200);
  }

  // The subscriber must observe versions base+1 .. base+10, in order,
  // with no gaps and no duplicates.
  for (int i = 1; i <= 10; ++i) {
    const std::string frame = reader.NextFrame();
    ASSERT_NE(frame, "") << "stream ended early at event " << i;
    EXPECT_NE(frame.find("event: snapshot"), std::string::npos) << frame;
    EXPECT_EQ(VersionOf(frame), base + i) << frame;
  }
  reader.Close();
}

TEST_F(ServerTest, SseMaxEventsAndDigestShape) {
  ASSERT_EQ(StatusOf(Http(port_, "POST", "/v1/kb", "{\"name\":\"cap\"}")),
            201);
  ASSERT_EQ(StatusOf(Http(port_, "POST", "/v1/kb/cap/graph",
                          "{\"text\":\"a p b [1,2] 0.9 .\\n\"}")),
            200);
  SseReader reader;
  ASSERT_TRUE(reader.Open(port_, "/v1/kb/cap/subscribe?max_events=1"));
  const std::string frame = reader.NextFrame();
  ASSERT_NE(frame, "");
  EXPECT_NE(frame.find("id: 1"), std::string::npos) << frame;
  const size_t data = frame.find("data: ");
  ASSERT_NE(data, std::string::npos);
  auto digest = util::Json::Parse(Trim(std::string_view(frame).substr(
      data + 6)));
  ASSERT_TRUE(digest.ok());
  EXPECT_EQ(digest->GetString("kb", ""), "cap");
  EXPECT_EQ(digest->GetInt("num_facts", -1), 1);
  EXPECT_EQ(digest->GetInt("num_live_facts", -1), 1);
  // max_events=1: the server ends the stream after the initial event.
  EXPECT_EQ(reader.NextFrame(), "");
  reader.Close();

  // Subscribing to a deleted KB's engine ends with a close event: delete
  // while a subscriber is attached.
  ASSERT_EQ(StatusOf(Http(port_, "POST", "/v1/kb", "{\"name\":\"doomed\"}")),
            201);
  SseReader watcher;
  ASSERT_TRUE(watcher.Open(port_, "/v1/kb/doomed/subscribe"));
  ASSERT_NE(watcher.NextFrame(), "");  // initial snapshot
  ASSERT_EQ(StatusOf(Http(port_, "DELETE", "/v1/kb/doomed")), 200);
  const std::string close_frame = watcher.NextFrame();
  EXPECT_NE(close_frame.find("event: close"), std::string::npos)
      << close_frame;
  EXPECT_NE(close_frame.find("\"reason\":\"deleted\""), std::string::npos)
      << close_frame;
  EXPECT_EQ(watcher.NextFrame(), "");  // then EOF
  watcher.Close();
}

TEST_F(ServerTest, SsePredicateFilterSkipsUntouchedVersions) {
  ASSERT_EQ(StatusOf(Http(port_, "POST", "/v1/kb", "{\"name\":\"filt\"}")),
            201);
  ASSERT_EQ(StatusOf(Http(port_, "POST", "/v1/kb/filt/graph",
                          "{\"text\":\"a p b [1,2] 0.9 .\\n\"}")),
            200);

  SseReader reader;
  ASSERT_TRUE(reader.Open(port_, "/v1/kb/filt/subscribe?predicates=q,r"));
  const std::string initial = reader.NextFrame();
  ASSERT_NE(initial, "");  // initial snapshot is always delivered
  const int64_t base = VersionOf(initial);
  ASSERT_GE(base, 1);

  // One edit touching only p (filtered out), then one touching q
  // (delivered).
  ASSERT_EQ(StatusOf(Http(port_, "POST", "/v1/kb/filt/edits",
                          "{\"script\":\"+ a p c [3,4] 0.5 .\\n\"}")),
            200);
  ASSERT_EQ(StatusOf(Http(port_, "POST", "/v1/kb/filt/edits",
                          "{\"script\":\"+ a q d [5,6] 0.5 .\\n\"}")),
            200);

  // The p-only version surfaces as a `: skip` comment (resume cursor
  // still advances), the q version as a real snapshot event.
  bool saw_skip = false;
  std::string frame;
  for (;;) {
    frame = reader.NextFrame(/*keep_comments=*/true);
    ASSERT_NE(frame, "") << "stream ended before the q edit arrived";
    if (frame.rfind(":", 0) == 0) {
      saw_skip = saw_skip ||
                 frame.find(StringPrintf(": skip %lld",
                                         (long long)(base + 1))) == 0;
      continue;
    }
    break;
  }
  EXPECT_TRUE(saw_skip);
  EXPECT_NE(frame.find("event: snapshot"), std::string::npos) << frame;
  EXPECT_EQ(VersionOf(frame), base + 2) << frame;
  reader.Close();

  // Malformed filter: only empty names.
  EXPECT_EQ(StatusOf(Http(port_, "GET",
                          "/v1/kb/filt/subscribe?predicates=%2C")),
            400);
}

TEST_F(ServerTest, MineEndpointDiscoversAndAdoptsRules) {
  ASSERT_EQ(StatusOf(Http(port_, "POST", "/v1/kb", "{\"name\":\"miner\"}")),
            201);
  // 30 players with two non-overlapping club spells each: textbook
  // disjointness evidence.
  std::string tq;
  for (int i = 0; i < 30; ++i) {
    tq += StringPrintf("pl%d playsFor club%d [2000,2003] 0.9 .\\n", i,
                       i % 5);
    tq += StringPrintf("pl%d playsFor club%d [2005,2008] 0.8 .\\n", i,
                       5 + i % 5);
  }
  ASSERT_EQ(StatusOf(Http(port_, "POST", "/v1/kb/miner/graph",
                          "{\"text\":\"" + tq + "\"}")),
            200);

  // Read-only mine: report + canonical .tcr document, nothing installed.
  const std::string response =
      Http(port_, "POST", "/v1/kb/miner/mine", "{\"min_support\":5}");
  ASSERT_EQ(StatusOf(response), 200) << response;
  const util::Json body = BodyOf(response);
  EXPECT_FALSE(body.GetBool("adopted", true));
  ASSERT_GE(body.GetInt("num_rules", 0), 1) << response;
  const util::Json* rules = body.Find("rules");
  ASSERT_NE(rules, nullptr);
  ASSERT_TRUE(rules->is_array());
  ASSERT_FALSE(rules->items().empty());
  const util::Json& top = rules->items().front();
  EXPECT_EQ(top.GetString("name", ""), "disjoint_playsFor");
  EXPECT_EQ(top.GetString("kind", ""), "disjointness");
  EXPECT_TRUE(top.GetBool("hard", false));  // clean data
  EXPECT_NE(body.GetString("tcr", "").find("disjoint_playsFor"),
            std::string::npos);
  ASSERT_EQ(StatusOf(Http(port_, "GET", "/v1/kb/miner/mine")), 405);

  // Adopt: the mined rules land via the normal WAL'd rule write and the
  // conflicts endpoint detects with them.
  const std::string adopt = Http(port_, "POST", "/v1/kb/miner/mine",
                                 "{\"min_support\":5,\"adopt\":true}");
  ASSERT_EQ(StatusOf(adopt), 200) << adopt;
  const util::Json adopted = BodyOf(adopt);
  EXPECT_TRUE(adopted.GetBool("adopted", false));
  EXPECT_GE(adopted.GetInt("added", 0), 1);
  EXPECT_GT(adopted.GetInt("adopted_version", 0),
            adopted.GetInt("version", 0));
  const util::Json rules_now =
      BodyOf(Http(port_, "GET", "/v1/kb/miner/rules"));
  EXPECT_GE(rules_now.GetInt("num_rules", 0), 1);
  const util::Json conflicts =
      BodyOf(Http(port_, "GET", "/v1/kb/miner/conflicts"));
  EXPECT_EQ(conflicts.GetInt("num_conflicts", -1), 0);  // clean data
}

TEST_F(ServerTest, AsOfTimeTravelReads) {
  // Every read endpoint accepts ?as_of=<version> and serves the retained
  // snapshot of that version: valid → 200, garbage → 400, never-published
  // → 404, evicted from the retention ring → 410.
  ASSERT_EQ(StatusOf(Http(port_, "POST", "/v1/kb", "{\"name\":\"tt\"}")),
            201);
  ASSERT_EQ(StatusOf(Http(port_, "POST", "/v1/kb/tt/graph",
                          "{\"text\":\"a p b [1,2] 0.9 .\\n\"}")),
            200);  // version 1
  ASSERT_EQ(StatusOf(Http(port_, "POST", "/v1/kb/tt/rules",
                          "{\"text\":\"c1: quad(x, p, y, t) & quad(x, p, "
                          "z, t') & y != z -> disjoint(t, t') .\"}")),
            200);  // version 2
  ASSERT_EQ(StatusOf(Http(port_, "POST", "/v1/kb/tt/edits",
                          "{\"script\":\"+ a p c [1,3] 0.5 .\\n\"}")),
            200);  // version 3

  // Happy path: the frozen version, not the current one.
  util::Json old_graph =
      BodyOf(Http(port_, "GET", "/v1/kb/tt/graph?as_of=1"));
  EXPECT_EQ(old_graph.GetInt("version", -1), 1);
  EXPECT_EQ(old_graph.GetInt("num_live_facts", -1), 1);
  util::Json now_graph = BodyOf(Http(port_, "GET", "/v1/kb/tt/graph"));
  EXPECT_EQ(now_graph.GetInt("version", -1), 3);
  EXPECT_EQ(now_graph.GetInt("num_live_facts", -1), 2);
  util::Json old_stats =
      BodyOf(Http(port_, "GET", "/v1/kb/tt/stats?as_of=1"));
  EXPECT_EQ(old_stats.GetInt("version", -1), 1);
  const util::Json* stats_body = old_stats.Find("stats");
  ASSERT_NE(stats_body, nullptr);
  EXPECT_EQ(stats_body->GetInt("num_facts", -1), 1);
  // Version 1 predates the rule upload, so its conflict set is empty and
  // its rule list too — every other read endpoint resolves the same way.
  EXPECT_EQ(StatusOf(Http(port_, "GET", "/v1/kb/tt/rules?as_of=1")), 200);
  EXPECT_EQ(StatusOf(Http(port_, "GET", "/v1/kb/tt/conflicts?as_of=1")),
            200);
  EXPECT_EQ(
      StatusOf(Http(port_, "GET", "/v1/kb/tt/complete?prefix=p&as_of=1")),
      200);
  EXPECT_EQ(StatusOf(Http(port_, "GET", "/v1/kb/tt/suggest?as_of=1")), 200);

  // Garbage and out-of-range versions.
  EXPECT_EQ(StatusOf(Http(port_, "GET", "/v1/kb/tt/graph?as_of=banana")),
            400);
  EXPECT_EQ(StatusOf(Http(port_, "GET", "/v1/kb/tt/graph?as_of=-1")), 400);
  EXPECT_EQ(StatusOf(Http(port_, "GET", "/v1/kb/tt/graph?as_of=99")), 404);

  // Push version 1 out of the default 8-deep retention ring; it answers
  // 410 Gone from then on while a still-retained version keeps serving.
  for (int b = 0; b < 9; ++b) {
    const std::string script = StringPrintf(
        "{\"script\":\"+ a p d%d [%d,%d] 0.5 .\\n\"}", b, 10 + b, 11 + b);
    ASSERT_EQ(StatusOf(Http(port_, "POST", "/v1/kb/tt/edits", script)),
              200);
  }
  EXPECT_EQ(StatusOf(Http(port_, "GET", "/v1/kb/tt/graph?as_of=1")), 410);
  EXPECT_EQ(ErrorCodeOf(BodyOf(Http(port_, "GET",
                                    "/v1/kb/tt/graph?as_of=1"))),
            "Gone");
  EXPECT_EQ(StatusOf(Http(port_, "GET", "/v1/kb/tt/stats?as_of=12")), 200);
}

TEST_F(ServerTest, SseResumeFromRetainedVersions) {
  // An in-memory KB has no WAL, but a reconnecting subscriber whose
  // missed versions are all still in the retention ring gets them
  // replayed as snapshot events — in order, no gaps, no duplicates.
  ASSERT_EQ(StatusOf(Http(port_, "POST", "/v1/kb", "{\"name\":\"ring\"}")),
            201);
  ASSERT_EQ(StatusOf(Http(port_, "POST", "/v1/kb/ring/graph",
                          "{\"text\":\"a p b [1,2] 0.9 .\\n\"}")),
            200);  // version 1
  for (int b = 0; b < 2; ++b) {
    const std::string script = StringPrintf(
        "{\"script\":\"+ a p c%d [%d,%d] 0.5 .\\n\"}", b, 10 + b, 11 + b);
    ASSERT_EQ(StatusOf(Http(port_, "POST", "/v1/kb/ring/edits", script)),
              200);  // versions 2, 3
  }

  const std::string resumed =
      Http(port_, "GET", "/v1/kb/ring/subscribe?max_events=2", "",
           "Last-Event-ID: 1\r\n");
  EXPECT_EQ(resumed.find("event: edit"), std::string::npos) << resumed;
  const size_t v2 = resumed.find("id: 2");
  const size_t v3 = resumed.find("id: 3");
  ASSERT_NE(v2, std::string::npos) << resumed;
  ASSERT_NE(v3, std::string::npos) << resumed;
  EXPECT_LT(v2, v3);

  // A resume whose chain fell out of the ring cannot replay; it degrades
  // to the plain initial-snapshot resync.
  for (int b = 0; b < 9; ++b) {
    const std::string script = StringPrintf(
        "{\"script\":\"+ a p e%d [%d,%d] 0.5 .\\n\"}", b, 30 + b, 31 + b);
    ASSERT_EQ(StatusOf(Http(port_, "POST", "/v1/kb/ring/edits", script)),
              200);  // versions 4..12; version 2 leaves the ring
  }
  const std::string resync =
      Http(port_, "GET", "/v1/kb/ring/subscribe?max_events=1", "",
           "Last-Event-ID: 1\r\n");
  EXPECT_EQ(CountOf(resync, "event: snapshot"), 1u) << resync;
  EXPECT_NE(resync.find("id: 12"), std::string::npos) << resync;
}

TEST_F(ServerTest, StopIsIdempotentAndClean) {
  server_->Stop();
  server_->Stop();  // second stop is a no-op
}

TEST_F(ServerTest, ConcurrentStopsRaceCleanly) {
  // Regression: before Stop() serialized on the lifecycle mutex, the
  // exchange(false) loser read listen_fd_ and acceptor_.joinable() while
  // the winner was join()ing the thread and close()ing the fd — a data
  // race (caught by the TSan CI job running this test) and a potential
  // double-close. Losers must block until the winner has fully stopped.
  std::vector<std::thread> stoppers;
  stoppers.reserve(8);
  for (int i = 0; i < 8; ++i) {
    stoppers.emplace_back([this] { server_->Stop(); });
  }
  for (auto& t : stoppers) t.join();

  // After every Stop() returned the server is really down: the port no
  // longer accepts (Http returns an empty response on connect failure).
  EXPECT_EQ(Http(port_, "GET", "/v1/kb"), "");
}

TEST_F(ServerTest, StopOnSharedPoolIgnoresOtherServersStreams) {
  // Two servers on one registry pool; an open-ended SSE stream on B must
  // not gate Stop() on A — A waits only on its own connections.
  auto pool = registry_.pool();
  HttpServer::Options options;
  options.port = 0;
  options.pool = pool;
  HttpServer a(options, MakeApiHandler(&registry_));
  HttpServer b(options, MakeApiHandler(&registry_));
  auto port_a = a.Start();
  auto port_b = b.Start();
  ASSERT_TRUE(port_a.ok());
  ASSERT_TRUE(port_b.ok());

  SseReader reader;
  ASSERT_TRUE(reader.Open(*port_b, "/v1/kb/default/subscribe"));
  ASSERT_NE(reader.NextFrame(), "");  // stream is live on B

  const auto t0 = std::chrono::steady_clock::now();
  a.Stop();
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_LT(elapsed, std::chrono::seconds(2))
      << "Stop() blocked on another server's stream";

  // B still serves (same pool, unaffected by A's stop).
  EXPECT_EQ(StatusOf(Http(*port_b, "GET", "/v1/kb")), 200);
  reader.Close();
  b.Stop();  // its stream observes stopping() within a poll tick
}

// ---------------------------------------------------------- observability

TEST_F(ServerTest, MetricsEndpointExposesAssertedValues) {
  // The default registry is process-global: assert deltas of cumulative
  // series between two scrapes, and absolutes only for per-KB gauges of
  // a KB this test created.
  const std::string first = Http(port_, "GET", "/metrics");
  ASSERT_EQ(StatusOf(first), 200);
  EXPECT_TRUE(HasHeader(first, "Content-Type: text/plain; version=0.0.4"))
      << first;
  const std::string before = TextBodyOf(first);
  // The scrape itself is in flight while it renders.
  EXPECT_GE(MetricValue(before, "tecore_http_requests_in_flight"), 1);

  ASSERT_EQ(StatusOf(Http(port_, "POST", "/v1/kb", "{\"name\":\"met\"}")),
            201);
  ASSERT_EQ(StatusOf(Http(port_, "POST", "/v1/kb/met/graph",
                          "{\"text\":\"a p b [1,2] 0.9 .\\n"
                          "a p c [3,4] 0.8 .\\n\"}")),
            200);
  ASSERT_EQ(StatusOf(Http(port_, "GET", "/v1/kb/met/stats")), 200);
  ASSERT_EQ(StatusOf(Http(port_, "GET", "/v1/kb/ghost/stats")), 404);

  const std::string after = TextBodyOf(Http(port_, "GET", "/metrics"));
  const auto delta = [&](const std::string& series) {
    const long long b = MetricValue(before, series);
    const long long a = MetricValue(after, series);
    return a - (b < 0 ? 0 : b);
  };
  // Request counters, labelled by endpoint and status class.
  EXPECT_GE(delta("tecore_http_requests_total{endpoint=\"graph\","
                  "status=\"2xx\"}"),
            1);
  EXPECT_GE(delta("tecore_http_requests_total{endpoint=\"stats\","
                  "status=\"2xx\"}"),
            1);
  EXPECT_GE(delta("tecore_http_requests_total{endpoint=\"stats\","
                  "status=\"4xx\"}"),
            1);
  EXPECT_GE(delta("tecore_http_requests_total{endpoint=\"metrics\","
                  "status=\"2xx\"}"),
            1);
  // Latency histogram observed each of those requests.
  EXPECT_GE(
      delta("tecore_http_request_duration_micros_count{endpoint=\"graph\"}"),
      1);
  // Per-KB gauges are absolute truths about the KB just created.
  EXPECT_EQ(MetricValue(after, "tecore_kb_facts{kb=\"met\"}"), 2);
  EXPECT_EQ(MetricValue(after, "tecore_kb_version{kb=\"met\"}"), 1);

  // Deleting the KB retires its series.
  ASSERT_EQ(StatusOf(Http(port_, "DELETE", "/v1/kb/met")), 200);
  const std::string gone = TextBodyOf(Http(port_, "GET", "/metrics"));
  EXPECT_EQ(MetricValue(gone, "tecore_kb_facts{kb=\"met\"}"), -1);

  // The exposition endpoint is GET-only.
  EXPECT_EQ(StatusOf(Http(port_, "POST", "/metrics")), 405);
}

TEST_F(ServerTest, MetricsCountPipelineStages) {
  const std::string before = TextBodyOf(Http(port_, "GET", "/metrics"));
  ASSERT_EQ(StatusOf(Http(port_, "POST", "/v1/graph",
                          "{\"text\":\"x coach a [1,5] 0.9 .\\n"
                          "x coach b [2,6] 0.8 .\\n\"}")),
            200);
  ASSERT_EQ(StatusOf(Http(
                port_, "POST", "/v1/rules",
                "{\"text\":\"c1: quad(x, coach, y, t) & "
                "quad(x, coach, z, t') & y != z -> disjoint(t, t') .\"}")),
            200);
  ASSERT_EQ(StatusOf(Http(port_, "POST", "/v1/solve", "{}")), 200);
  const std::string after = TextBodyOf(Http(port_, "GET", "/metrics"));
  const auto delta = [&](const char* stage) {
    const std::string series = StringPrintf(
        "tecore_stage_duration_micros_count{stage=\"%s\"}", stage);
    const long long b = MetricValue(before, series);
    const long long a = MetricValue(after, series);
    return a - (b < 0 ? 0 : b);
  };
  EXPECT_GE(delta("ground"), 1);
  EXPECT_GE(delta("canonicalize"), 1);
  EXPECT_GE(delta("solve"), 1);
  EXPECT_GE(delta("publish"), 1);  // graph/rules/solve all publish
}

TEST_F(ServerTest, SseSubscriberGaugeTracksOpenStreams) {
  ASSERT_EQ(StatusOf(Http(port_, "POST", "/v1/kb", "{\"name\":\"obs\"}")),
            201);
  ASSERT_EQ(StatusOf(Http(port_, "POST", "/v1/kb/obs/graph",
                          "{\"text\":\"a p b [1,2] 0.9 .\\n\"}")),
            200);
  const std::string series = "tecore_kb_sse_subscribers{kb=\"obs\"}";
  const long long base =
      MetricValue(TextBodyOf(Http(port_, "GET", "/metrics")), series);
  ASSERT_EQ(base, 0);

  SseReader reader;
  ASSERT_TRUE(reader.Open(port_, "/v1/kb/obs/subscribe"));
  ASSERT_NE(reader.NextFrame(), "");  // stream registered and live
  EXPECT_EQ(MetricValue(TextBodyOf(Http(port_, "GET", "/metrics")), series),
            1);
  reader.Close();
  // The worker only notices the dead socket when it next writes — push
  // edits until the failed send retires the stream and the gauge drops.
  long long live = 1;
  for (int i = 0; i < 100 && live != 0; ++i) {
    ASSERT_EQ(
        StatusOf(Http(port_, "POST", "/v1/kb/obs/edits",
                      StringPrintf("{\"script\":\"+ a p b%d [1,2] 0.5 .\\n\"}",
                                   i))),
        200);
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    live = MetricValue(TextBodyOf(Http(port_, "GET", "/metrics")), series);
  }
  EXPECT_EQ(live, 0);
}

TEST_F(ServerTest, MetricsCountWalActivityForDurableKbs) {
  // A durable registry of its own: checkpoint after every record so the
  // checkpoint counter provably moves inside the test.
  const std::string data_dir = ::testing::TempDir() + "/obs_metrics_dur";
  std::filesystem::remove_all(data_dir);
  api::EngineRegistry::Options reg_options;
  reg_options.data_dir = data_dir;
  reg_options.storage.checkpoint_wal_records = 1;
  api::EngineRegistry durable(reg_options);
  HttpServer::Options options;
  options.port = 0;
  options.num_threads = 2;
  HttpServer server(options, MakeApiHandler(&durable));
  auto port = server.Start();
  ASSERT_TRUE(port.ok());

  const std::string before = TextBodyOf(Http(*port, "GET", "/metrics"));
  ASSERT_EQ(StatusOf(Http(*port, "POST", "/v1/kb", "{\"name\":\"dur\"}")),
            201);
  ASSERT_EQ(StatusOf(Http(*port, "POST", "/v1/kb/dur/graph",
                          "{\"text\":\"a p b [1,2] 0.9 .\\n\"}")),
            200);
  ASSERT_EQ(StatusOf(Http(*port, "POST", "/v1/kb/dur/edits",
                          "{\"script\":\"+ a p c [3,4] 0.5 .\\n\"}")),
            200);
  ASSERT_EQ(StatusOf(Http(*port, "POST", "/v1/kb/dur/edits",
                          "{\"script\":\"+ a p d [5,6] 0.5 .\\n\"}")),
            200);
  const std::string after = TextBodyOf(Http(*port, "GET", "/metrics"));
  const auto delta = [&](const std::string& series) {
    const long long b = MetricValue(before, series);
    const long long a = MetricValue(after, series);
    return a - (b < 0 ? 0 : b);
  };
  EXPECT_GE(delta("tecore_storage_recoveries_total"), 1);  // the Open
  // The graph replacement checkpoints directly; each edit batch appends
  // one fsynced WAL record.
  EXPECT_GE(delta("tecore_wal_appends_total"), 2);
  EXPECT_GT(delta("tecore_wal_append_bytes_total"), 0);
  EXPECT_GE(delta("tecore_wal_fsyncs_total"), 2);
  EXPECT_GE(delta("tecore_checkpoints_total"), 1);
  server.Stop();
}

TEST_F(ServerTest, RequestIdEchoedOrGenerated) {
  // A client-supplied id is echoed back verbatim.
  const std::string echoed = Http(port_, "GET", "/v1/kb", "",
                                  "X-Request-Id: client-req-42\r\n");
  EXPECT_EQ(StatusOf(echoed), 200);
  EXPECT_TRUE(HasHeader(echoed, "X-Request-Id: client-req-42")) << echoed;
  // Without one the server mints an id (r-<boot>-<seq>).
  const std::string minted = Http(port_, "GET", "/v1/kb");
  EXPECT_TRUE(HasHeader(minted, "X-Request-Id: r-")) << minted;
}

TEST_F(ServerTest, MetricsAreAuthExempt) {
  RouterOptions router;
  router.auth_token = "s3cret";
  HttpServer::Options options;
  options.port = 0;
  options.num_threads = 2;
  HttpServer secured(options, MakeApiHandler(&registry_, router));
  auto port = secured.Start();
  ASSERT_TRUE(port.ok());
  // API requires the token; the scrape never does.
  EXPECT_EQ(StatusOf(Http(*port, "GET", "/v1/kb")), 401);
  EXPECT_EQ(StatusOf(Http(*port, "GET", "/metrics")), 200);
  secured.Stop();
}

TEST_F(ServerTest, PerKbTokensScopeAccessToTheirKb) {
  RouterOptions router;
  router.auth_token = "s3cret";
  router.kb_tokens = {{"alpha", "alpha-tok"}, {"beta", "beta-tok"}};
  HttpServer::Options options;
  options.port = 0;
  options.num_threads = 2;
  HttpServer secured(options, MakeApiHandler(&registry_, router));
  auto port = secured.Start();
  ASSERT_TRUE(port.ok());
  const std::string service = "Authorization: Bearer s3cret\r\n";
  const std::string alpha = "Authorization: Bearer alpha-tok\r\n";

  // Tenant lifecycle needs the service token.
  ASSERT_EQ(StatusOf(Http(*port, "POST", "/v1/kb", "{\"name\":\"alpha\"}",
                          service)),
            201);
  ASSERT_EQ(StatusOf(Http(*port, "POST", "/v1/kb", "{\"name\":\"beta\"}",
                          service)),
            201);

  // The KB token works inside its own KB — writes and reads.
  EXPECT_EQ(StatusOf(Http(*port, "POST", "/v1/kb/alpha/graph",
                          "{\"text\":\"a p b [1,2] 0.9 .\\n\"}", alpha)),
            200);
  EXPECT_EQ(StatusOf(Http(*port, "GET", "/v1/kb/alpha/stats", "", alpha)),
            200);
  EXPECT_EQ(StatusOf(Http(*port, "GET", "/v1/kb/alpha", "", alpha)), 200);

  // …and nowhere else: sibling KBs, the legacy default KB, admin surface.
  const std::string cross =
      Http(*port, "GET", "/v1/kb/beta/stats", "", alpha);
  EXPECT_EQ(StatusOf(cross), 403);
  EXPECT_EQ(ErrorCodeOf(BodyOf(cross)), "PermissionDenied");
  EXPECT_EQ(StatusOf(Http(*port, "GET", "/v1/stats", "", alpha)), 403);
  EXPECT_EQ(StatusOf(Http(*port, "GET", "/v1/kb", "", alpha)), 403);
  EXPECT_EQ(StatusOf(Http(*port, "DELETE", "/v1/kb/alpha", "", alpha)), 403);
  EXPECT_EQ(StatusOf(Http(*port, "POST", "/v1/kb", "{\"name\":\"x\"}",
                          alpha)),
            403);
  // Probing an unknown KB with a KB token is denied, not 404: the scope
  // check runs before routing can reveal what exists.
  EXPECT_EQ(StatusOf(Http(*port, "GET", "/v1/kb/ghost/stats", "", alpha)),
            403);

  // No credentials at all is 401, not 403.
  EXPECT_EQ(StatusOf(Http(*port, "GET", "/v1/kb/alpha/stats")), 401);

  // The service token retains full access, including other KBs.
  EXPECT_EQ(StatusOf(Http(*port, "GET", "/v1/kb/beta", "", service)), 200);
  EXPECT_EQ(StatusOf(Http(*port, "DELETE", "/v1/kb/beta", "", service)),
            200);
  secured.Stop();
}

}  // namespace
}  // namespace server
}  // namespace tecore
