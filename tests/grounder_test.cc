#include <gtest/gtest.h>

#include <cmath>

#include "datagen/generators.h"
#include "ground/grounder.h"
#include "kb/weighting.h"
#include "rules/library.h"
#include "rules/parser.h"

namespace tecore {
namespace ground {
namespace {

/// Grounds the paper's running example with the given rule text.
Result<GroundingResult> GroundExample(const std::string& rule_text,
                                      rdf::TemporalGraph* graph,
                                      GroundingOptions options = {}) {
  auto rules = rules::ParseRules(rule_text);
  if (!rules.ok()) return rules.status();
  Grounder grounder(graph, *rules, options);
  return grounder.Run();
}

TEST(Grounder, SeedsOneAtomPerFact) {
  rdf::TemporalGraph graph = datagen::RunningExampleGraph(false);
  auto result = GroundExample("quad(x, coach, y, t) -> false .", &graph);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->network.NumAtoms(), graph.NumFacts());
  for (AtomId id = 0; id < result->network.NumAtoms(); ++id) {
    EXPECT_TRUE(result->network.atom(id).is_evidence);
  }
}

TEST(Grounder, C2FindsTheChelseaNapoliClash) {
  rdf::TemporalGraph graph = datagen::RunningExampleGraph(false);
  GroundingOptions options;
  options.add_evidence_priors = false;
  auto result = GroundExample(
      "c2: quad(x, coach, y, t) & quad(x, coach, z, t') & y != z "
      "-> disjoint(t, t') .",
      &graph, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // Chelsea [2000,2004] vs Napoli [2001,2003] overlap -> one conflict
  // clause (the symmetric grounding deduplicates); Leicester [2015,2017]
  // is disjoint from both.
  ASSERT_EQ(result->network.NumClauses(), 1u);
  const GroundClause& clause = result->network.clauses()[0];
  EXPECT_TRUE(clause.hard);
  EXPECT_EQ(clause.literals.size(), 2u);
  for (int32_t lit : clause.literals) {
    EXPECT_FALSE(LiteralSign(lit));
  }
}

TEST(Grounder, SatisfiedConditionHeadsEmitNoClause) {
  rdf::TemporalGraph graph = datagen::RunningExampleGraph(false);
  GroundingOptions options;
  options.add_evidence_priors = false;
  // Constraint heads that hold (disjoint pairs) are counted, not emitted.
  auto result = GroundExample(
      "c2: quad(x, coach, y, t) & quad(x, coach, z, t') & y != z "
      "-> disjoint(t, t') .",
      &graph, options);
  ASSERT_TRUE(result.ok());
  // Pairs: (Chelsea,Leicester), (Chelsea,Napoli), (Leicester,Napoli) in
  // both orders = 6 groundings; 4 satisfied, 2 (the clash, both orders)
  // collapse into 1 clause.
  EXPECT_EQ(result->num_satisfied_heads, 4u);
  EXPECT_EQ(result->network.NumClauses(), 1u);
}

TEST(Grounder, InferenceRuleDerivesAtoms) {
  rdf::TemporalGraph graph = datagen::RunningExampleGraph(false);
  GroundingOptions options;
  options.add_evidence_priors = false;
  auto result = GroundExample(
      "f1: quad(x, playsFor, y, t) -> quad(x, worksFor, y, t) w = 2.5 .",
      &graph, options);
  ASSERT_TRUE(result.ok());
  // One playsFor fact -> one derived worksFor atom + implication clause.
  EXPECT_EQ(result->network.NumAtoms(), graph.NumFacts() + 1);
  EXPECT_EQ(result->network.NumClauses(), 1u);
  const GroundClause& clause = result->network.clauses()[0];
  EXPECT_FALSE(clause.hard);
  EXPECT_DOUBLE_EQ(clause.weight, 2.5);
  EXPECT_EQ(clause.literals.size(), 2u);
}

TEST(Grounder, ChainedRulesReachFixpoint) {
  rdf::TemporalGraph graph = datagen::RunningExampleGraph(true);
  GroundingOptions options;
  options.add_evidence_priors = false;
  auto result = GroundExample(R"(
      f1: quad(x, playsFor, y, t) -> quad(x, worksFor, y, t) w = 2.5 .
      f2: quad(x, worksFor, y, t) & quad(y, locatedIn, z, t')
          [intersects(t, t')] -> quad(x, livesIn, z, t ^ t') w = 1.6 .
  )",
                              &graph, options);
  ASSERT_TRUE(result.ok());
  // f1 derives (CR, worksFor, Palermo, [1984,1986]); f2 chains on it to
  // derive (CR, livesIn, PalermoCity, [1984,1986]).
  EXPECT_GT(result->rounds, 1);
  bool found_works_for = false, found_lives_in = false;
  const auto& dict = graph.dict();
  for (AtomId id = 0; id < result->network.NumAtoms(); ++id) {
    const GroundAtom& atom = result->network.atom(id);
    if (atom.is_evidence) continue;
    const std::string pred = dict.Lookup(atom.predicate).lexical();
    if (pred == "worksFor") {
      found_works_for = true;
      EXPECT_EQ(atom.interval, temporal::Interval(1984, 1986));
    }
    if (pred == "livesIn") {
      found_lives_in = true;
      EXPECT_EQ(atom.interval, temporal::Interval(1984, 1986));
      EXPECT_EQ(dict.Lookup(atom.object).lexical(), "PalermoCity");
    }
  }
  EXPECT_TRUE(found_works_for);
  EXPECT_TRUE(found_lives_in);
}

TEST(Grounder, EmptyIntersectionDerivesNothing) {
  rdf::TemporalGraph graph;
  ASSERT_TRUE(graph.AddQuad("a", "pp", "b", temporal::Interval(1, 2), 0.9).ok());
  ASSERT_TRUE(graph.AddQuad("b", "qq", "c", temporal::Interval(5, 6), 0.9).ok());
  GroundingOptions options;
  options.add_evidence_priors = false;
  // No intersects() guard: the head interval is empty -> no clause.
  auto result = GroundExample(
      "quad(x, pp, y, t) & quad(y, qq, z, t') -> quad(x, rr, z, t ^ t') w = 1 .",
      &graph, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->network.NumAtoms(), 2u);
  EXPECT_EQ(result->network.NumClauses(), 0u);
}

TEST(Grounder, ArithmeticConditionFiltersGroundings) {
  rdf::TemporalGraph graph = datagen::RunningExampleGraph(false);
  GroundingOptions options;
  options.add_evidence_priors = false;
  // CR starts playing at 33 (1984-1951): not a teen.
  auto result = GroundExample(
      "f3: quad(x, playsFor, y, t) & quad(x, birthDate, z, t') "
      "[t - t' < 20] -> quad(x, type, TeenPlayer, t) w = 2.9 .",
      &graph, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->network.NumClauses(), 0u);

  // With a lenient bound the rule fires.
  auto result2 = GroundExample(
      "quad(x, playsFor, y, t) & quad(x, birthDate, z, t') "
      "[t - t' < 40] -> quad(x, type, TeenPlayer, t) w = 2.9 .",
      &graph, options);
  ASSERT_TRUE(result2.ok());
  EXPECT_EQ(result2->network.NumClauses(), 1u);
}

TEST(Grounder, EvidencePriorsAreEmitted) {
  rdf::TemporalGraph graph = datagen::RunningExampleGraph(false);
  auto result = GroundExample("quad(x, nosuch, y, t) -> false .", &graph);
  ASSERT_TRUE(result.ok());
  // No rule clauses, but one unit prior per evidence atom (confidences are
  // all != 0.5).
  EXPECT_EQ(result->network.NumClauses(), graph.NumFacts());
  for (const GroundClause& clause : result->network.clauses()) {
    EXPECT_EQ(clause.rule_index, -1);
    EXPECT_EQ(clause.literals.size(), 1u);
    EXPECT_FALSE(clause.hard);
    EXPECT_GT(clause.weight, 0.0);
  }
}

TEST(Grounder, DuplicateQuadEvidenceMergesSupport) {
  rdf::TemporalGraph graph;
  ASSERT_TRUE(graph.AddQuad("a", "pp", "b", temporal::Interval(1, 2), 0.8).ok());
  ASSERT_TRUE(graph.AddQuad("a", "pp", "b", temporal::Interval(1, 2), 0.7).ok());
  GroundingOptions log_odds;
  log_odds.fact_weighting = kb::FactWeighting::kLogOdds;
  auto result =
      GroundExample("quad(x, nosuch, y, t) -> false .", &graph, log_odds);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->network.NumAtoms(), 1u);
  const GroundAtom& atom = result->network.atom(0);
  // log-odds add up: logit(0.8) + logit(0.7).
  EXPECT_NEAR(atom.prior_weight, std::log(0.8 / 0.2) + std::log(0.7 / 0.3),
              1e-9);
}

TEST(Grounder, MaxAtomsGuardTrips) {
  rdf::TemporalGraph graph = datagen::RunningExampleGraph(true);
  GroundingOptions options;
  options.max_atoms = 3;  // absurdly small
  auto result = GroundExample(
      "f1: quad(x, playsFor, y, t) -> quad(x, worksFor, y, t) w = 2.5 .",
      &graph, options);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kOutOfRange);
}

TEST(GroundNetwork, TautologiesAndDuplicatesDropped) {
  GroundNetwork net;
  AtomId a = net.GetOrAddAtom(0, 1, 2, temporal::Interval(0, 1), true, 1.0, 0);
  AtomId b = net.GetOrAddAtom(0, 1, 3, temporal::Interval(0, 1), true, 1.0, 1);
  GroundClause tautology;
  tautology.literals = {PositiveLiteral(a), NegativeLiteral(a)};
  EXPECT_FALSE(net.AddClause(tautology));
  GroundClause clause;
  clause.literals = {NegativeLiteral(a), NegativeLiteral(b)};
  EXPECT_TRUE(net.AddClause(clause));
  EXPECT_FALSE(net.AddClause(clause));  // duplicate
  EXPECT_EQ(net.NumClauses(), 1u);
}

TEST(GroundNetwork, ComponentsSplitIndependentSubjects) {
  GroundNetwork net;
  AtomId a = net.GetOrAddAtom(0, 1, 2, temporal::Interval(0, 1), true, 1.0, 0);
  AtomId b = net.GetOrAddAtom(0, 1, 3, temporal::Interval(0, 1), true, 1.0, 1);
  AtomId c = net.GetOrAddAtom(9, 1, 2, temporal::Interval(0, 1), true, 1.0, 2);
  GroundClause clause;
  clause.literals = {NegativeLiteral(a), NegativeLiteral(b)};
  net.AddClause(clause);
  GroundClause unit;
  unit.hard = false;
  unit.weight = 1.0;
  unit.literals = {PositiveLiteral(c)};
  net.AddClause(unit);
  auto components = net.ConnectedComponents();
  ASSERT_EQ(components.size(), 2u);
  // {a,b} with the binary clause; {c} with its unit.
  size_t sizes[2] = {components[0].atoms.size(), components[1].atoms.size()};
  EXPECT_EQ(sizes[0] + sizes[1], 3u);
}

}  // namespace
}  // namespace ground
}  // namespace tecore
