// Concurrency stress for the service API: N reader threads hammer
// snapshot-based reads (the /v1 read endpoints' backing calls) while a
// writer applies randomized edit batches. Every read must observe a
// self-consistent (version, graph, stats, result) tuple, versions must be
// monotone per reader, and the final published result must be
// bit-identical to a from-scratch resolve of the edited KB at 1/2/4
// threads — the PR 3 determinism contract extended to concurrent traffic.
//
// Run under TSan (cmake -DTECORE_SANITIZE=thread) to audit the
// single-writer/many-reader claims, or ASan where TSan is unavailable.

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "api/engine.h"
#include "core/resolver.h"
#include "datagen/generators.h"
#include "rules/library.h"
#include "util/random.h"
#include "util/string_util.h"

namespace tecore {
namespace {

/// Deterministic insert line for batch `b`, slot `i`.
std::string InsertLine(size_t b, size_t i) {
  const size_t player = (b * 37 + i * 11) % 60;
  const size_t team = (b * 13 + i * 7) % 8;
  const int64_t begin = 1995 + static_cast<int64_t>((b + i) % 20);
  return StringPrintf("+ player%zu playsFor team%zu [%lld,%lld] 0.%zu%zu .\n",
                      player, team, static_cast<long long>(begin),
                      static_cast<long long>(begin + 3), 3 + b % 6, 1 + i % 9);
}

/// The matching retraction for InsertLine(b, i).
std::string RetractLine(size_t b, size_t i) {
  std::string line = InsertLine(b, i);
  line[0] = '-';
  return line;
}

TEST(ApiConcurrency, ReadersObserveConsistentSnapshotsUnderEdits) {
  api::Engine engine;
  datagen::FootballDbOptions gen;
  gen.num_players = 60;
  engine.SetGraph(std::move(datagen::GenerateFootballDb(gen).graph));
  auto constraints = rules::FootballConstraints();
  ASSERT_TRUE(constraints.ok());
  engine.AddRules(*constraints);

  const core::ResolveOptions options;  // MLN defaults
  auto seeded = engine.Solve(options);
  ASSERT_TRUE(seeded.ok()) << seeded.status().ToString();

  constexpr size_t kBatches = 10;
  constexpr int kReaders = 4;
  std::atomic<bool> done{false};
  std::atomic<int> reader_failures{0};

  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&engine, &done, &reader_failures, r] {
      uint64_t last_version = 0;
      size_t iterations = 0;
      while (!done.load(std::memory_order_acquire) || iterations < 3) {
        ++iterations;
        auto snap = engine.snapshot();
        // Versions are monotone from any single reader's point of view.
        if (snap->version < last_version) {
          ++reader_failures;
          break;
        }
        last_version = snap->version;
        if (!snap->has_graph()) continue;
        // Stats were computed from exactly this graph: a torn publish
        // would break the equality.
        if (snap->stats->num_facts != snap->graph->NumLiveFacts()) {
          ++reader_failures;
          break;
        }
        // A published result partitions exactly this snapshot's live
        // facts into kept and removed.
        if (snap->has_result() &&
            snap->result->kept_facts.size() +
                    snap->result->removed_facts.size() !=
                snap->graph->NumLiveFacts()) {
          ++reader_failures;
          break;
        }
        // Completion data is frozen with the snapshot.
        if (snap->CompletePredicate("plays").empty()) {
          ++reader_failures;
          break;
        }
        // Browse: rendering facts only reads the frozen graph.
        if (snap->has_result() && !snap->result->kept_facts.empty()) {
          (void)snap->graph->FactToString(snap->result->kept_facts[0]);
        }
        // Occasionally run full conflict detection against the frozen
        // snapshot (interns into the shared dictionary concurrently).
        if (iterations % 7 == static_cast<size_t>(r) % 7) {
          auto report = snap->DetectConflicts();
          if (!report.ok()) {
            ++reader_failures;
            break;
          }
        }
        // The frozen chunked columnar store must self-check clean even
        // while the writer copy-on-writes chunks out from under it.
        if (iterations % 5 == static_cast<size_t>(r) % 5 &&
            !snap->graph->CheckInvariants().ok()) {
          ++reader_failures;
          break;
        }
      }
    });
  }

  // The single writer: randomized-but-deterministic insert/retract
  // batches, each re-solved incrementally and published atomically.
  uint64_t version_before = engine.version();
  std::shared_ptr<const api::Snapshot> prev_published = engine.snapshot();
  for (size_t b = 0; b < kBatches; ++b) {
    std::string script = InsertLine(b, 0) + InsertLine(b, 1);
    if (b >= 2) script += RetractLine(b - 2, 0);  // retract an old insert
    auto outcome = engine.ApplyEditScript(script, options);
    ASSERT_TRUE(outcome.ok()) << "batch " << b << ": "
                              << outcome.status().ToString();
    EXPECT_GT(outcome->version, version_before);
    version_before = outcome->version;
    EXPECT_EQ(outcome->applied.inserted, 2u);
    // COW economics under live readers: each <=3-fact batch may copy at
    // most the chunks it touched, so consecutive published snapshots keep
    // sharing all but a handful of chunks.
    Status invariants = engine.graph_for_tests()->CheckInvariants();
    ASSERT_TRUE(invariants.ok()) << invariants.ToString();
    EXPECT_GE(rdf::TemporalGraph::CountSharedChunks(
                  *prev_published->graph, *outcome->snapshot->graph) + 4,
              prev_published->graph->NumChunks());
    prev_published = outcome->snapshot;
  }
  done.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();
  EXPECT_EQ(reader_failures.load(), 0);

  // Final state must be bit-identical to a from-scratch resolve of the
  // edited KB at 1/2/4 threads.
  auto final_snap = engine.snapshot();
  ASSERT_TRUE(final_snap->has_result());
  const core::ResolveResult& incremental = *final_snap->result;
  for (int threads : {1, 2, 4}) {
    rdf::TemporalGraph compact = final_snap->graph->CompactLive();
    core::ResolveOptions scratch_options = options;
    scratch_options.num_threads = threads;
    scratch_options.ground_threads = threads;
    core::Resolver resolver(&compact, *final_snap->rules, scratch_options);
    auto scratch = resolver.Run();
    ASSERT_TRUE(scratch.ok()) << scratch.status().ToString();
    EXPECT_EQ(incremental.objective, scratch->objective)  // bitwise
        << "threads=" << threads;
    EXPECT_EQ(incremental.feasible, scratch->feasible);
    EXPECT_EQ(incremental.ground_atoms, scratch->ground_atoms);
    EXPECT_EQ(incremental.ground_clauses, scratch->ground_clauses);
    EXPECT_EQ(incremental.num_components, scratch->num_components);
    // Flip sets compare via live ranks (scratch ids are compacted).
    auto to_ranks = [&](const std::vector<rdf::FactId>& ids) {
      std::vector<rdf::FactId> out;
      out.reserve(ids.size());
      for (rdf::FactId id : ids) {
        out.push_back(
            static_cast<rdf::FactId>(final_snap->graph->LiveRank(id)));
      }
      return out;
    };
    EXPECT_EQ(to_ranks(incremental.kept_facts), scratch->kept_facts);
    EXPECT_EQ(to_ranks(incremental.removed_facts), scratch->removed_facts);
    ASSERT_EQ(incremental.derived_facts.size(),
              scratch->derived_facts.size());
    for (size_t i = 0; i < incremental.derived_facts.size(); ++i) {
      EXPECT_EQ(incremental.derived_facts[i].score,
                scratch->derived_facts[i].score);  // bitwise
    }
  }
}

TEST(ApiConcurrency, ConcurrentCachedSolvesShareOneResult) {
  api::Engine engine;
  ASSERT_TRUE(engine.LoadGraphText(R"(
    CR coach Chelsea [2000,2004] 0.9 .
    CR coach Napoli [2001,2003] 0.6 .
  )")
                  .ok());
  ASSERT_TRUE(engine
                  .AddRulesText(
                      "c2: quad(x, coach, y, t) & quad(x, coach, z, t') "
                      "& y != z -> disjoint(t, t') .")
                  .ok());
  const core::ResolveOptions options;
  auto first = engine.Solve(options);
  ASSERT_TRUE(first.ok());

  // Many threads hitting the cache concurrently get the same object and
  // the same version — no re-solve, no torn (version, result) pair.
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 50; ++i) {
        auto outcome = engine.Solve(options);
        if (!outcome.ok() || !outcome->cached ||
            outcome->result.get() != first->result.get() ||
            outcome->version != first->version) {
          ++failures;
          return;
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
}

}  // namespace
}  // namespace tecore
