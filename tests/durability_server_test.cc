// Durability at the HTTP layer: a server backed by --data-dir storage is
// stopped and rebuilt (same store), and every acknowledged write must be
// visible to the successor; SSE reconnects with Last-Event-ID replay the
// missed edit scripts from the edit log; oversized request bodies are
// refused with 413 for both Content-Length and chunked uploads.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <string>

#include "api/registry.h"
#include "server/http_server.h"
#include "server/routes.h"
#include "storage/fs.h"
#include "util/json.h"
#include "util/string_util.h"

namespace tecore {
namespace server {
namespace {

int Connect(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

std::string RawRequest(int port, const std::string& request) {
  const int fd = Connect(port);
  if (fd < 0) return "";
  size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n =
        ::send(fd, request.data() + sent, request.size() - sent, 0);
    if (n <= 0) break;
    sent += static_cast<size_t>(n);
  }
  std::string response;
  char chunk[4096];
  ssize_t n;
  while ((n = ::recv(fd, chunk, sizeof(chunk), 0)) > 0) {
    response.append(chunk, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

std::string Http(int port, const std::string& method, const std::string& path,
                 const std::string& body = "",
                 const std::string& extra_headers = "") {
  return RawRequest(
      port, StringPrintf("%s %s HTTP/1.1\r\nHost: t\r\n%sContent-Length: "
                         "%zu\r\nConnection: close\r\n\r\n%s",
                         method.c_str(), path.c_str(), extra_headers.c_str(),
                         body.size(), body.c_str()));
}

int StatusOf(const std::string& response) {
  int status = 0;
  std::sscanf(response.c_str(), "HTTP/1.1 %d", &status);
  return status;
}

util::Json BodyOf(const std::string& response) {
  const size_t split = response.find("\r\n\r\n");
  if (split == std::string::npos) return util::Json::Null();
  auto parsed = util::Json::Parse(response.substr(split + 4));
  return parsed.ok() ? *parsed : util::Json::Null();
}

size_t CountOccurrences(const std::string& haystack,
                        const std::string& needle) {
  size_t count = 0;
  for (size_t at = haystack.find(needle); at != std::string::npos;
       at = haystack.find(needle, at + needle.size())) {
    ++count;
  }
  return count;
}

/// One durable server generation: registry over `data_dir` (recovering
/// whatever a predecessor left there) plus an HTTP front end.
class Generation {
 public:
  explicit Generation(const std::string& data_dir) {
    api::EngineRegistry::Options options;
    options.data_dir = data_dir;
    // Retain only the live snapshot so SSE resumes cannot be served from
    // the retained-version ring: these tests pin down the WAL edit-script
    // replay path (the ring path is covered in server_test.cc).
    options.engine.retain_versions = 1;
    registry_ = std::make_unique<api::EngineRegistry>(options);
    auto recovered = registry_->RecoverKbs();
    EXPECT_TRUE(recovered.ok());
    // Same bring-up as `serve`: the default KB always exists (recovery
    // may already have restored it).
    auto created = registry_->Create("default");
    EXPECT_TRUE(created.ok() ||
                created.status().code() == StatusCode::kAlreadyExists);
    HttpServer::Options http;
    http.port = 0;
    http.num_threads = 6;
    http.max_body_bytes = 4096;
    server_ =
        std::make_unique<HttpServer>(http, MakeApiHandler(registry_.get()));
    auto port = server_->Start();
    EXPECT_TRUE(port.ok());
    port_ = port.ok() ? *port : 0;
  }

  ~Generation() { server_->Stop(); }

  int port() const { return port_; }

 private:
  std::unique_ptr<api::EngineRegistry> registry_;
  std::unique_ptr<HttpServer> server_;
  int port_ = 0;
};

TEST(DurabilityServer, AcknowledgedWritesSurviveRestart) {
  const std::string data_dir = ::testing::TempDir() + "/durable_http";
  ASSERT_TRUE(storage::RemoveDirRecursive(data_dir).ok());
  int64_t version = 0;
  {
    Generation first(data_dir);
    ASSERT_GT(first.port(), 0);
    EXPECT_EQ(StatusOf(Http(first.port(), "POST", "/v1/kb",
                            "{\"name\":\"durable\"}")),
              201);
    util::Json graph =
        BodyOf(Http(first.port(), "POST", "/v1/kb/durable/graph",
                    "{\"text\":\"CR coach Chelsea [2000,2004] 0.9 .\\n"
                    "CR coach Napoli [2001,2003] 0.6 .\\n\"}"));
    EXPECT_EQ(graph.GetInt("num_facts", -1), 2);
    util::Json edits =
        BodyOf(Http(first.port(), "POST", "/v1/kb/durable/edits",
                    "{\"script\":\"+ CR coach Bari [2006,2008] 0.5 .\\n\"}"));
    EXPECT_EQ(edits.GetInt("inserted", -1), 1);
    version = edits.GetInt("version", -1);
    ASSERT_GT(version, 0);
  }  // server stopped, registry destroyed — only the data dir remains

  Generation second(data_dir);
  ASSERT_GT(second.port(), 0);
  util::Json graph = BodyOf(Http(second.port(), "GET",
                                 "/v1/kb/durable/graph"));
  EXPECT_EQ(graph.GetInt("num_facts", -1), 3);
  EXPECT_EQ(graph.GetInt("version", -1), version);
  // And the recovered KB is fully operational, not just readable.
  util::Json solve =
      BodyOf(Http(second.port(), "POST", "/v1/kb/durable/solve"));
  EXPECT_TRUE(solve.GetBool("feasible", false));
  ASSERT_TRUE(storage::RemoveDirRecursive(data_dir).ok());
}

TEST(DurabilityServer, SseResumeReplaysMissedEditScripts) {
  const std::string data_dir = ::testing::TempDir() + "/durable_sse";
  ASSERT_TRUE(storage::RemoveDirRecursive(data_dir).ok());
  Generation gen(data_dir);
  ASSERT_GT(gen.port(), 0);
  ASSERT_EQ(
      StatusOf(Http(gen.port(), "POST", "/v1/kb", "{\"name\":\"live\"}")),
      201);
  ASSERT_EQ(StatusOf(Http(gen.port(), "POST", "/v1/kb/live/graph",
                          "{\"text\":\"CR coach Chelsea [2000,2004] 0.9 "
                          ".\\n\"}")),
            200);  // version 1
  ASSERT_EQ(StatusOf(Http(gen.port(), "POST", "/v1/kb/live/edits",
                          "{\"script\":\"+ CR coach Napoli [2001,2003] 0.6 "
                          ".\\n\"}")),
            200);  // version 2
  ASSERT_EQ(StatusOf(Http(gen.port(), "POST", "/v1/kb/live/edits",
                          "{\"script\":\"+ CR coach Bari [2006,2008] 0.5 "
                          ".\\n\"}")),
            200);  // version 3

  // A client that saw version 1 reconnects: versions 2 and 3 come back as
  // edit-script events (in order, id = version), then the live snapshot.
  const std::string resumed =
      Http(gen.port(), "GET", "/v1/kb/live/subscribe?max_events=3", "",
           "Last-Event-ID: 1\r\n");
  EXPECT_EQ(CountOccurrences(resumed, "event: edit"), 2u) << resumed;
  EXPECT_EQ(CountOccurrences(resumed, "event: snapshot"), 1u) << resumed;
  const size_t first_edit = resumed.find("id: 2");
  const size_t second_edit = resumed.find("id: 3");
  ASSERT_NE(first_edit, std::string::npos) << resumed;
  ASSERT_NE(second_edit, std::string::npos) << resumed;
  EXPECT_LT(first_edit, second_edit);
  EXPECT_NE(resumed.find("+ CR coach Napoli [2001,2003] 0.6 ."),
            std::string::npos)
      << resumed;
  EXPECT_NE(resumed.find("+ CR coach Bari [2006,2008] 0.5 ."),
            std::string::npos)
      << resumed;

  // A current client (Last-Event-ID == head) gets no stale replay; the
  // one event it reads is produced by the next write.
  // A resume from before a graph replacement cannot be served as scripts:
  // replacing the graph invalidates the edit log tail, so the client gets
  // a plain snapshot resync instead.
  ASSERT_EQ(StatusOf(Http(gen.port(), "POST", "/v1/kb/live/graph",
                          "{\"text\":\"CR coach Lazio [2005,2007] 0.4 "
                          ".\\n\"}")),
            200);  // version 4, edit tail reset
  const std::string resynced =
      Http(gen.port(), "GET", "/v1/kb/live/subscribe?max_events=1", "",
           "Last-Event-ID: 2\r\n");
  EXPECT_EQ(CountOccurrences(resynced, "event: edit"), 0u) << resynced;
  EXPECT_EQ(CountOccurrences(resynced, "event: snapshot"), 1u) << resynced;
  EXPECT_NE(resynced.find("id: 4"), std::string::npos) << resynced;

  // Garbage in the header is a client bug, answered as such.
  EXPECT_EQ(StatusOf(Http(gen.port(), "GET", "/v1/kb/live/subscribe", "",
                          "Last-Event-ID: banana\r\n")),
            400);
  ASSERT_TRUE(storage::RemoveDirRecursive(data_dir).ok());
}

TEST(DurabilityServer, OversizedBodiesGet413) {
  const std::string data_dir = ::testing::TempDir() + "/durable_413";
  ASSERT_TRUE(storage::RemoveDirRecursive(data_dir).ok());
  Generation gen(data_dir);  // max_body_bytes = 4096
  ASSERT_GT(gen.port(), 0);

  // Content-Length over the cap: refused up front, body never buffered.
  const std::string big(8192, 'x');
  const std::string declared =
      Http(gen.port(), "POST", "/v1/kb/default/graph", big);
  EXPECT_EQ(StatusOf(declared), 413) << declared;
  util::Json body = BodyOf(declared);
  const util::Json* error = body.Find("error");
  ASSERT_NE(error, nullptr) << declared;
  EXPECT_EQ(error->GetString("code", ""), "PayloadTooLarge");
  EXPECT_NE(error->GetString("message", "").find("4096"), std::string::npos);

  // Chunked upload crossing the cap mid-stream: same answer, even though
  // no Content-Length ever declared the size.
  std::string chunked =
      "POST /v1/kb/default/graph HTTP/1.1\r\nHost: t\r\n"
      "Transfer-Encoding: chunked\r\n\r\n";
  for (int i = 0; i < 3; ++i) {
    chunked += StringPrintf("%zx\r\n", big.size());
    chunked += big;
    chunked += "\r\n";
  }
  chunked += "0\r\n\r\n";
  const std::string streamed = RawRequest(gen.port(), chunked);
  EXPECT_EQ(StatusOf(streamed), 413) << streamed.substr(0, 200);
  EXPECT_EQ(BodyOf(streamed).Find("error")->GetString("code", ""),
            "PayloadTooLarge");

  // An in-bounds request on the same server still works.
  EXPECT_EQ(StatusOf(Http(gen.port(), "POST", "/v1/kb/default/graph",
                          "{\"text\":\"a p b [1,2] 0.9 .\\n\"}")),
            200);
  ASSERT_TRUE(storage::RemoveDirRecursive(data_dir).ok());
}

TEST(DurabilityServer, OversizedHeadersGet431) {
  const std::string data_dir = ::testing::TempDir() + "/durable_431";
  ASSERT_TRUE(storage::RemoveDirRecursive(data_dir).ok());
  Generation gen(data_dir);
  ASSERT_GT(gen.port(), 0);

  // Headers alone over the header cap (64 KiB default): refused as a
  // header problem (431), not blamed on a body that was never sent.
  const std::string response = RawRequest(
      gen.port(), "GET /v1/kb HTTP/1.1\r\nHost: t\r\nX-Big: " +
                      std::string(70000, 'x') +
                      "\r\nConnection: close\r\n\r\n");
  EXPECT_EQ(StatusOf(response), 431) << response.substr(0, 200);
  util::Json body = BodyOf(response);
  const util::Json* error = body.Find("error");
  ASSERT_NE(error, nullptr) << response;
  EXPECT_EQ(error->GetString("code", ""), "HeadersTooLarge");
  EXPECT_NE(error->GetString("message", "").find("headers"),
            std::string::npos);
  ASSERT_TRUE(storage::RemoveDirRecursive(data_dir).ok());
}

TEST(DurabilityServer, ResumeAheadOfServerGetsImmediateSnapshot) {
  const std::string data_dir = ::testing::TempDir() + "/durable_ahead";
  ASSERT_TRUE(storage::RemoveDirRecursive(data_dir).ok());
  Generation gen(data_dir);
  ASSERT_GT(gen.port(), 0);
  ASSERT_EQ(StatusOf(Http(gen.port(), "POST", "/v1/kb/default/graph",
                          "{\"text\":\"a p b [1,2] 0.9 .\\n\"}")),
            200);  // version 1

  // A client resuming from a version this server never published can only
  // mean the server lost state (e.g. a restart under --fsync never). On
  // an idle KB no publish may ever arrive, so the stream must send the
  // current snapshot immediately as the resync point instead of leaving
  // the client on stale state indefinitely.
  const std::string response =
      Http(gen.port(), "GET", "/v1/kb/default/subscribe?max_events=1", "",
           "Last-Event-ID: 999\r\n");
  EXPECT_EQ(CountOccurrences(response, "event: edit"), 0u) << response;
  EXPECT_EQ(CountOccurrences(response, "event: snapshot"), 1u) << response;
  EXPECT_NE(response.find("id: 1"), std::string::npos) << response;
  ASSERT_TRUE(storage::RemoveDirRecursive(data_dir).ok());
}

}  // namespace
}  // namespace server
}  // namespace tecore
