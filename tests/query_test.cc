#include <gtest/gtest.h>

#include <algorithm>

#include "datagen/generators.h"
#include "rdf/query.h"
#include "util/random.h"

namespace tecore {
namespace rdf {
namespace {

using temporal::AllenRelation;
using temporal::AllenSet;
using temporal::Interval;

class QueryTest : public ::testing::Test {
 protected:
  QueryTest() : graph_(datagen::RunningExampleGraph(false)) {}

  TermId Id(const std::string& name) {
    auto id = graph_.dict().FindIri(name);
    EXPECT_TRUE(id.ok()) << name;
    return id.ok() ? *id : kInvalidTermId;
  }

  TemporalGraph graph_;
};

TEST_F(QueryTest, PredicateWildcardPattern) {
  QuadPattern pattern;
  pattern.predicate = Id("coach");
  auto hits = MatchPattern(graph_, pattern);
  EXPECT_EQ(hits.size(), 3u);  // Chelsea, Leicester, Napoli
}

TEST_F(QueryTest, SubjectPredicateAndObject) {
  QuadPattern pattern;
  pattern.subject = Id("CR");
  pattern.predicate = Id("coach");
  pattern.object = Id("Chelsea");
  auto hits = MatchPattern(graph_, pattern);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(graph_.fact(hits[0]).interval, Interval(2000, 2004));
}

TEST_F(QueryTest, WindowIntersecting) {
  QuadPattern pattern;
  pattern.predicate = Id("coach");
  pattern.window = Interval(2001, 2003);
  auto hits = MatchPattern(graph_, pattern);
  EXPECT_EQ(hits.size(), 2u);  // Chelsea + Napoli overlap it
}

TEST_F(QueryTest, WindowBeforeRelation) {
  QuadPattern pattern;
  pattern.predicate = Id("coach");
  pattern.window = Interval(2015, 2017);
  pattern.window_relation = AllenSet(AllenRelation::kBefore);
  auto hits = MatchPattern(graph_, pattern);
  // Chelsea [2000,2004] and Napoli [2001,2003] both end well before 2015.
  EXPECT_EQ(hits.size(), 2u);
}

TEST_F(QueryTest, ConfidenceFloor) {
  QuadPattern pattern;
  pattern.predicate = Id("coach");
  pattern.min_confidence = 0.65;
  auto hits = MatchPattern(graph_, pattern);
  EXPECT_EQ(hits.size(), 2u);  // Napoli (0.6) filtered out
}

TEST_F(QueryTest, MakePatternUnknownNameMatchesNothing) {
  QuadPattern pattern = MakePattern(graph_, std::nullopt, "noSuchPredicate",
                                    std::nullopt);
  EXPECT_TRUE(MatchPattern(graph_, pattern).empty());
}

TEST_F(QueryTest, SnapshotAtPointInTime) {
  TemporalGraph snapshot = SnapshotAt(graph_, 2002);
  // Alive in 2002: Chelsea spell, birthDate, Napoli spell.
  EXPECT_EQ(snapshot.NumFacts(), 3u);
  TemporalGraph snapshot_84 = SnapshotAt(graph_, 1985);
  EXPECT_EQ(snapshot_84.NumFacts(), 2u);  // Palermo + birthDate
}

TEST_F(QueryTest, SliceWindow) {
  TemporalGraph slice = Slice(graph_, Interval(2014, 2016));
  EXPECT_EQ(slice.NumFacts(), 2u);  // Leicester + birthDate
}

TEST_F(QueryTest, TimelineSortsByBegin) {
  auto timeline = Timeline(graph_, Id("CR"), Id("coach"));
  ASSERT_EQ(timeline.size(), 3u);
  EXPECT_EQ(graph_.fact(timeline[0]).interval.begin(), 2000);
  EXPECT_EQ(graph_.fact(timeline[1]).interval.begin(), 2001);
  EXPECT_EQ(graph_.fact(timeline[2]).interval.begin(), 2015);
}

TEST(QueryProperty, MatchesBruteForceOnRandomGraphs) {
  Rng rng(2211);
  datagen::WikidataOptions gen;
  gen.target_facts = 3000;
  datagen::GeneratedKg kg = datagen::GenerateWikidata(gen);
  const TemporalGraph& graph = kg.graph;
  auto pred_counts = graph.PredicateCounts();

  for (int trial = 0; trial < 60; ++trial) {
    QuadPattern pattern;
    if (rng.Bernoulli(0.7)) {
      pattern.predicate =
          pred_counts[rng.PickIndex(pred_counts)].first;
    }
    if (rng.Bernoulli(0.4)) {
      pattern.subject = graph.fact(static_cast<FactId>(
          rng.Uniform(graph.NumFacts()))).subject;
    }
    if (rng.Bernoulli(0.6)) {
      int64_t b = rng.UniformRange(1960, 2010);
      pattern.window = Interval(b, b + rng.UniformRange(0, 10));
      if (rng.Bernoulli(0.3)) {
        pattern.window_relation = temporal::AllenSet::Disjoint();
      }
    }
    if (rng.Bernoulli(0.3)) pattern.min_confidence = 0.6;

    std::vector<FactId> expected;
    for (FactId id = 0; id < graph.NumFacts(); ++id) {
      const TemporalFact& f = graph.fact(id);
      if (pattern.subject && f.subject != *pattern.subject) continue;
      if (pattern.predicate && f.predicate != *pattern.predicate) continue;
      if (pattern.object && f.object != *pattern.object) continue;
      if (f.confidence < pattern.min_confidence) continue;
      if (pattern.window &&
          !pattern.window_relation.Holds(f.interval, *pattern.window)) {
        continue;
      }
      expected.push_back(id);
    }
    auto actual = MatchPattern(graph, pattern);
    EXPECT_EQ(actual, expected) << "trial " << trial;
  }
}

}  // namespace
}  // namespace rdf
}  // namespace tecore
