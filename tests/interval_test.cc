#include <gtest/gtest.h>

#include "temporal/interval.h"

namespace tecore {
namespace temporal {
namespace {

TEST(Interval, BasicAccessors) {
  Interval iv(2000, 2004);
  EXPECT_EQ(iv.begin(), 2000);
  EXPECT_EQ(iv.end(), 2004);
  EXPECT_EQ(iv.end_exclusive(), 2005);
  EXPECT_EQ(iv.Duration(), 5);
  EXPECT_EQ(iv.ToString(), "[2000,2004]");
}

TEST(Interval, PointInterval) {
  Interval p = Interval::Point(1951);
  EXPECT_EQ(p.begin(), p.end());
  EXPECT_EQ(p.Duration(), 1);
  EXPECT_EQ(p.ToString(), "[1951]");
}

TEST(Interval, MakeRejectsInverted) {
  EXPECT_FALSE(Interval::Make(5, 3).ok());
  EXPECT_EQ(Interval::Make(5, 3).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_TRUE(Interval::Make(3, 3).ok());
}

TEST(Interval, ContainsPointAndInterval) {
  Interval iv(10, 20);
  EXPECT_TRUE(iv.Contains(10));
  EXPECT_TRUE(iv.Contains(20));
  EXPECT_FALSE(iv.Contains(9));
  EXPECT_FALSE(iv.Contains(21));
  EXPECT_TRUE(iv.Contains(Interval(12, 18)));
  EXPECT_TRUE(iv.Contains(Interval(10, 20)));
  EXPECT_FALSE(iv.Contains(Interval(5, 15)));
}

TEST(Interval, IntersectsAndIntersect) {
  Interval a(2000, 2004), b(2001, 2003), c(2015, 2017);
  EXPECT_TRUE(a.Intersects(b));
  EXPECT_FALSE(a.Intersects(c));
  auto common = a.Intersect(b);
  ASSERT_TRUE(common.has_value());
  EXPECT_EQ(*common, Interval(2001, 2003));
  EXPECT_FALSE(a.Intersect(c).has_value());
  // Single shared point.
  auto point = Interval(1, 5).Intersect(Interval(5, 9));
  ASSERT_TRUE(point.has_value());
  EXPECT_EQ(*point, Interval(5, 5));
}

TEST(Interval, HullCoversBoth) {
  Interval a(1, 3), b(10, 12);
  EXPECT_EQ(a.Hull(b), Interval(1, 12));
  EXPECT_EQ(b.Hull(a), Interval(1, 12));
  EXPECT_EQ(a.Hull(a), a);
}

TEST(Interval, StrictOrder) {
  EXPECT_TRUE(Interval(1, 2).StrictlyBefore(Interval(4, 5)));
  EXPECT_FALSE(Interval(1, 4).StrictlyBefore(Interval(4, 5)));
  EXPECT_TRUE(Interval(1, 2) < Interval(1, 3));
  EXPECT_TRUE(Interval(1, 9) < Interval(2, 3));
}

TEST(Interval, ParseRoundTrip) {
  auto iv = Interval::Parse("[2000,2004]");
  ASSERT_TRUE(iv.ok());
  EXPECT_EQ(*iv, Interval(2000, 2004));
  auto pt = Interval::Parse(" [ 1951 ] ");
  ASSERT_TRUE(pt.ok());
  EXPECT_EQ(*pt, Interval(1951, 1951));
  auto ws = Interval::Parse("[ 10 , 20 ]");
  ASSERT_TRUE(ws.ok());
  EXPECT_EQ(*ws, Interval(10, 20));
  auto negative = Interval::Parse("[-5,-1]");
  ASSERT_TRUE(negative.ok());
  EXPECT_EQ(*negative, Interval(-5, -1));
}

TEST(Interval, ParseErrors) {
  EXPECT_FALSE(Interval::Parse("2000,2004").ok());
  EXPECT_FALSE(Interval::Parse("[2000,2004").ok());
  EXPECT_FALSE(Interval::Parse("[b,e]").ok());
  EXPECT_FALSE(Interval::Parse("[5,3]").ok());
  EXPECT_FALSE(Interval::Parse("[]").ok());
}

TEST(Interval, HashDistinguishes) {
  std::hash<Interval> h;
  EXPECT_NE(h(Interval(1, 2)), h(Interval(1, 3)));
  EXPECT_EQ(h(Interval(1, 2)), h(Interval(1, 2)));
}

}  // namespace
}  // namespace temporal
}  // namespace tecore
