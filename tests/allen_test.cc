#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "temporal/allen.h"
#include "util/random.h"

namespace tecore {
namespace temporal {
namespace {

TEST(AllenRelation, ThirteenBasicRelationsOnCanonicalPairs) {
  // One canonical witness per relation (closed intervals; half-open view
  // makes adjacent discrete intervals "meet").
  EXPECT_EQ(RelationBetween({0, 1}, {3, 4}), AllenRelation::kBefore);
  EXPECT_EQ(RelationBetween({0, 1}, {2, 4}), AllenRelation::kMeets);
  EXPECT_EQ(RelationBetween({0, 2}, {2, 4}), AllenRelation::kOverlaps);
  EXPECT_EQ(RelationBetween({0, 1}, {0, 4}), AllenRelation::kStarts);
  EXPECT_EQ(RelationBetween({1, 2}, {0, 4}), AllenRelation::kDuring);
  EXPECT_EQ(RelationBetween({2, 4}, {0, 4}), AllenRelation::kFinishes);
  EXPECT_EQ(RelationBetween({0, 4}, {0, 4}), AllenRelation::kEquals);
  EXPECT_EQ(RelationBetween({0, 4}, {2, 4}), AllenRelation::kFinishedBy);
  EXPECT_EQ(RelationBetween({0, 4}, {1, 2}), AllenRelation::kContains);
  EXPECT_EQ(RelationBetween({0, 4}, {0, 1}), AllenRelation::kStartedBy);
  EXPECT_EQ(RelationBetween({2, 4}, {0, 2}), AllenRelation::kOverlappedBy);
  EXPECT_EQ(RelationBetween({2, 4}, {0, 1}), AllenRelation::kMetBy);
  EXPECT_EQ(RelationBetween({3, 4}, {0, 1}), AllenRelation::kAfter);
}

TEST(AllenRelation, PaperExample) {
  // Chelsea [2000,2004] vs Napoli [2001,2003]: coach spells overlap
  // (contains), hence the c2 conflict.
  Interval chelsea(2000, 2004), napoli(2001, 2003);
  EXPECT_EQ(RelationBetween(chelsea, napoli), AllenRelation::kContains);
  EXPECT_TRUE(AllenSet::Intersecting().Holds(chelsea, napoli));
  EXPECT_FALSE(AllenSet::Disjoint().Holds(chelsea, napoli));
  // Chelsea vs Leicester [2015,2017] are disjoint.
  EXPECT_TRUE(AllenSet::Disjoint().Holds(chelsea, Interval(2015, 2017)));
}

/// Property: for every pair, exactly one basic relation holds (JEPD).
class AllenPairSweep
    : public ::testing::TestWithParam<std::tuple<int, int, int, int>> {};

TEST_P(AllenPairSweep, ExactlyOneRelationHolds) {
  auto [ab, ae, bb, be] = GetParam();
  if (ab > ae || bb > be) GTEST_SKIP();
  Interval a(ab, ae), b(bb, be);
  AllenRelation r = RelationBetween(a, b);
  int holds = 0;
  for (int i = 0; i < kNumAllenRelations; ++i) {
    if (AllenSet(static_cast<AllenRelation>(i)).Holds(a, b)) ++holds;
  }
  EXPECT_EQ(holds, 1);
  // And the converse holds in the swapped direction.
  EXPECT_EQ(RelationBetween(b, a), Converse(r));
}

INSTANTIATE_TEST_SUITE_P(
    SmallDomain, AllenPairSweep,
    ::testing::Combine(::testing::Range(0, 4), ::testing::Range(0, 4),
                       ::testing::Range(0, 4), ::testing::Range(0, 4)));

TEST(AllenConverse, IsAnInvolutionPairedAroundEquals) {
  for (int i = 0; i < kNumAllenRelations; ++i) {
    AllenRelation r = static_cast<AllenRelation>(i);
    EXPECT_EQ(Converse(Converse(r)), r);
  }
  EXPECT_EQ(Converse(AllenRelation::kEquals), AllenRelation::kEquals);
  EXPECT_EQ(Converse(AllenRelation::kBefore), AllenRelation::kAfter);
  EXPECT_EQ(Converse(AllenRelation::kMeets), AllenRelation::kMetBy);
  EXPECT_EQ(Converse(AllenRelation::kOverlaps), AllenRelation::kOverlappedBy);
  EXPECT_EQ(Converse(AllenRelation::kStarts), AllenRelation::kStartedBy);
  EXPECT_EQ(Converse(AllenRelation::kDuring), AllenRelation::kContains);
  EXPECT_EQ(Converse(AllenRelation::kFinishes), AllenRelation::kFinishedBy);
}

TEST(AllenNames, RoundTripThroughParser) {
  for (int i = 0; i < kNumAllenRelations; ++i) {
    AllenRelation r = static_cast<AllenRelation>(i);
    auto parsed = ParseAllenRelation(AllenRelationName(r));
    ASSERT_TRUE(parsed.ok()) << AllenRelationName(r);
    EXPECT_EQ(*parsed, r);
  }
  // CamelCase aliases.
  EXPECT_EQ(*ParseAllenRelation("overlappedBy"), AllenRelation::kOverlappedBy);
  EXPECT_EQ(*ParseAllenRelation("finished_by"), AllenRelation::kFinishedBy);
  EXPECT_EQ(*ParseAllenRelation("overlap"), AllenRelation::kOverlaps);
  EXPECT_FALSE(ParseAllenRelation("sideways").ok());
}

TEST(AllenComposition, KnownIdentities) {
  // before ∘ before = {before}
  EXPECT_EQ(ComposeBasic(AllenRelation::kBefore, AllenRelation::kBefore),
            AllenSet(AllenRelation::kBefore));
  // equals is the identity of composition.
  for (int i = 0; i < kNumAllenRelations; ++i) {
    AllenRelation r = static_cast<AllenRelation>(i);
    EXPECT_EQ(ComposeBasic(AllenRelation::kEquals, r), AllenSet(r));
    EXPECT_EQ(ComposeBasic(r, AllenRelation::kEquals), AllenSet(r));
  }
  // meets ∘ met-by contains equals (A meets B, B met-by C allows A = C).
  EXPECT_TRUE(ComposeBasic(AllenRelation::kMeets, AllenRelation::kMetBy)
                  .Contains(AllenRelation::kEquals));
  // before ∘ after is the full set (no information).
  EXPECT_EQ(ComposeBasic(AllenRelation::kBefore, AllenRelation::kAfter),
            AllenSet::All());
  // during ∘ during = {during}.
  EXPECT_EQ(ComposeBasic(AllenRelation::kDuring, AllenRelation::kDuring),
            AllenSet(AllenRelation::kDuring));
  // overlaps ∘ overlaps = {before, meets, overlaps}.
  AllenSet expected;
  expected.Add(AllenRelation::kBefore)
      .Add(AllenRelation::kMeets)
      .Add(AllenRelation::kOverlaps);
  EXPECT_EQ(ComposeBasic(AllenRelation::kOverlaps, AllenRelation::kOverlaps),
            expected);
}

TEST(AllenComposition, SoundOnRandomTriples) {
  // Property: for random concrete triples, rel(A,C) is always a member of
  // rel(A,B) ∘ rel(B,C).
  Rng rng(7);
  for (int trial = 0; trial < 2000; ++trial) {
    auto make = [&rng]() {
      int64_t b = rng.UniformRange(0, 30);
      return Interval(b, b + rng.UniformRange(0, 10));
    };
    Interval a = make(), b = make(), c = make();
    AllenSet composed =
        ComposeBasic(RelationBetween(a, b), RelationBetween(b, c));
    EXPECT_TRUE(composed.Contains(RelationBetween(a, c)))
        << a.ToString() << " " << b.ToString() << " " << c.ToString();
  }
}

TEST(AllenComposition, ConverseAntiHomomorphism) {
  // (r1 ∘ r2)^-1 == r2^-1 ∘ r1^-1 for all basic pairs.
  for (int i = 0; i < kNumAllenRelations; ++i) {
    for (int j = 0; j < kNumAllenRelations; ++j) {
      AllenRelation r1 = static_cast<AllenRelation>(i);
      AllenRelation r2 = static_cast<AllenRelation>(j);
      EXPECT_EQ(ComposeBasic(r1, r2).ConverseSet(),
                ComposeBasic(Converse(r2), Converse(r1)));
    }
  }
}

TEST(AllenSet, SetAlgebra) {
  AllenSet disjoint = AllenSet::Disjoint();
  AllenSet intersecting = AllenSet::Intersecting();
  EXPECT_EQ(disjoint.Count() + intersecting.Count(), kNumAllenRelations);
  EXPECT_TRUE(disjoint.Intersect(intersecting).Empty());
  EXPECT_EQ(disjoint.Union(intersecting), AllenSet::All());
  EXPECT_EQ(disjoint.ConverseSet(), disjoint);  // symmetric set
  EXPECT_EQ(AllenSet::None().Count(), 0);
  EXPECT_TRUE(AllenSet::None().Empty());
}

TEST(AllenSet, ToStringListsMembers) {
  AllenSet s;
  s.Add(AllenRelation::kBefore).Add(AllenRelation::kMeets);
  EXPECT_EQ(s.ToString(), "{before,meets}");
}

}  // namespace
}  // namespace temporal
}  // namespace tecore
