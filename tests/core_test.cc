#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/conflict.h"
#include "core/resolver.h"
#include "core/session.h"
#include "core/translator.h"
#include "datagen/generators.h"
#include "rules/library.h"
#include "rules/parser.h"

namespace tecore {
namespace core {
namespace {

/// The paper's full running example rule set: f1-f3 and c1-c3.
rules::RuleSet PaperRules() {
  auto inference = rules::PaperInferenceRules();
  auto constraints = rules::PaperConstraints();
  EXPECT_TRUE(inference.ok());
  EXPECT_TRUE(constraints.ok());
  rules::RuleSet set = *inference;
  set.Merge(*constraints);
  return set;
}

/// Names of the facts kept in a resolution, as "pred/object" strings.
std::set<std::string> KeptSignatures(const rdf::TemporalGraph& graph,
                                     const ResolveResult& result) {
  std::set<std::string> out;
  for (rdf::FactId id : result.kept_facts) {
    const rdf::TemporalFact& f = graph.fact(id);
    out.insert(graph.dict().Lookup(f.predicate).lexical() + "/" +
               graph.dict().Lookup(f.object).lexical());
  }
  return out;
}

class RunningExampleTest : public ::testing::TestWithParam<rules::SolverKind> {
};

TEST_P(RunningExampleTest, Fig7MapRemovesNapoliKeepsRest) {
  rdf::TemporalGraph graph = datagen::RunningExampleGraph(true);
  rules::RuleSet rules = PaperRules();
  ResolveOptions options;
  options.solver = GetParam();
  Resolver resolver(&graph, rules, options);
  auto result = resolver.Run();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->feasible);

  // Fact (5) (CR, coach, Napoli, [2001,2003]) 0.6 clashes with fact (1)
  // (CR, coach, Chelsea, [2000,2004]) 0.9 under c2; the lower-confidence
  // one is removed (paper Fig. 7).
  std::set<std::string> kept = KeptSignatures(graph, *result);
  EXPECT_TRUE(kept.count("coach/Chelsea")) << result->StatsPanel();
  EXPECT_TRUE(kept.count("coach/Leicester"));
  EXPECT_TRUE(kept.count("playsFor/Palermo"));
  EXPECT_TRUE(kept.count("birthDate/1951"));
  EXPECT_FALSE(kept.count("coach/Napoli"));

  // Exactly one of the five CR facts is removed.
  size_t removed_cr = 0;
  for (rdf::FactId id : result->removed_facts) {
    if (graph.dict().Lookup(graph.fact(id).subject).lexical() == "CR") {
      ++removed_cr;
    }
  }
  EXPECT_EQ(removed_cr, 1u);
}

TEST_P(RunningExampleTest, DerivesWorksForAndLivesIn) {
  rdf::TemporalGraph graph = datagen::RunningExampleGraph(true);
  rules::RuleSet rules = PaperRules();
  ResolveOptions options;
  options.solver = GetParam();
  Resolver resolver(&graph, rules, options);
  auto result = resolver.Run();
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  bool works_for = false, lives_in = false;
  const auto& dict = result->consistent_graph.dict();
  for (const rdf::TemporalFact& f : result->consistent_graph.facts()) {
    const std::string pred = dict.Lookup(f.predicate).lexical();
    if (pred == "worksFor" &&
        dict.Lookup(f.object).lexical() == "Palermo") {
      works_for = true;
    }
    if (pred == "livesIn" &&
        dict.Lookup(f.object).lexical() == "PalermoCity") {
      lives_in = true;
    }
  }
  EXPECT_TRUE(works_for) << "f1 should derive (CR, worksFor, Palermo)";
  EXPECT_TRUE(lives_in) << "f2 should derive (CR, livesIn, PalermoCity)";
}

INSTANTIATE_TEST_SUITE_P(BothSolvers, RunningExampleTest,
                         ::testing::Values(rules::SolverKind::kMln,
                                           rules::SolverKind::kPsl),
                         [](const auto& info) {
                           return info.param == rules::SolverKind::kMln
                                      ? "Mln"
                                      : "Psl";
                         });

TEST(ConflictDetector, FindsTheOneRunningExampleConflict) {
  rdf::TemporalGraph graph = datagen::RunningExampleGraph(false);
  rules::RuleSet rules = PaperRules();
  ConflictDetector detector(&graph, rules);
  auto report = detector.Detect();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->NumConflicts(), 1u);
  EXPECT_EQ(report->NumConflictingFacts(), 2u);  // Chelsea & Napoli facts
  EXPECT_EQ(report->num_input_facts, graph.NumFacts());
  // The stats panel mentions the constraint's name.
  EXPECT_NE(report->StatsPanel(rules).find("c2"), std::string::npos);
}

TEST(ConflictDetector, CleanGraphHasNoConflicts) {
  rdf::TemporalGraph graph;
  ASSERT_TRUE(
      graph.AddQuad("CR", "coach", "Chelsea", temporal::Interval(2000, 2004), 0.9)
          .ok());
  ASSERT_TRUE(graph
                  .AddQuad("CR", "coach", "Leicester",
                           temporal::Interval(2015, 2017), 0.7)
                  .ok());
  rules::RuleSet rules = PaperRules();
  ConflictDetector detector(&graph, rules);
  auto report = detector.Detect();
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->NumConflicts(), 0u);
}

TEST(Translator, RejectsDisjunctiveHeadForPsl) {
  rdf::TemporalGraph graph = datagen::RunningExampleGraph(false);
  auto rules = rules::ParseRules(
      "quad(x, coach, y, t) -> quad(x, worksFor, y, t) | "
      "quad(x, advises, y, t) w = 1 .");
  ASSERT_TRUE(rules.ok());
  auto mln = Translator::Translate(&graph, *rules, rules::SolverKind::kMln);
  EXPECT_TRUE(mln.ok());
  auto psl = Translator::Translate(&graph, *rules, rules::SolverKind::kPsl);
  EXPECT_FALSE(psl.ok());
  EXPECT_EQ(psl.status().code(), StatusCode::kInvalidArgument);
}

TEST(Resolver, ThresholdRemovesWeakDerivedFacts) {
  rdf::TemporalGraph graph = datagen::RunningExampleGraph(true);
  rules::RuleSet rules = PaperRules();
  ResolveOptions options;
  options.solver = rules::SolverKind::kMln;
  options.derived_threshold = 0.99;  // sigmoid(2.5)=0.924, sigmoid(1.6)=0.832
  Resolver resolver(&graph, rules, options);
  auto result = resolver.Run();
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->derived_facts.empty());
  EXPECT_GT(result->derived_below_threshold, 0u);

  // With no threshold the derived facts survive.
  rdf::TemporalGraph graph2 = datagen::RunningExampleGraph(true);
  ResolveOptions options2;
  options2.solver = rules::SolverKind::kMln;
  Resolver resolver2(&graph2, rules, options2);
  auto result2 = resolver2.Run();
  ASSERT_TRUE(result2.ok());
  EXPECT_FALSE(result2->derived_facts.empty());
}

TEST(Resolver, HigherWeightWinsWhenConfidencesFlip) {
  // Mirror of the running example with Napoli *more* confident than
  // Chelsea: MAP must now drop Chelsea instead.
  rdf::TemporalGraph graph;
  ASSERT_TRUE(graph
                  .AddQuad("CR", "coach", "Chelsea",
                           temporal::Interval(2000, 2004), 0.6)
                  .ok());
  ASSERT_TRUE(graph
                  .AddQuad("CR", "coach", "Napoli",
                           temporal::Interval(2001, 2003), 0.9)
                  .ok());
  auto constraints = rules::PaperConstraints();
  ASSERT_TRUE(constraints.ok());
  ResolveOptions options;
  Resolver resolver(&graph, *constraints, options);
  auto result = resolver.Run();
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->removed_facts.size(), 1u);
  const rdf::TemporalFact& removed = graph.fact(result->removed_facts[0]);
  EXPECT_EQ(graph.dict().Lookup(removed.object).lexical(), "Chelsea");
}

TEST(Session, FullWorkflow) {
  Session session;
  // 1. data (the paper's Fig. 1 UTKG in .tq syntax).
  ASSERT_TRUE(session
                  .LoadGraphText(R"(
    CR coach Chelsea [2000,2004] 0.9 .
    CR coach Leicester [2015,2017] 0.7 .
    CR playsFor Palermo [1984,1986] 0.5 .
    CR birthDate 1951 [1951,2017] 1.0 .
    CR coach Napoli [2001,2003] 0.6 .
  )")
                  .ok());
  EXPECT_EQ(session.graph().NumFacts(), 5u);

  // Auto-completion over predicates (Fig. 5).
  auto completions = session.CompletePredicate("coa");
  ASSERT_EQ(completions.size(), 1u);
  EXPECT_EQ(completions[0], "coach");
  EXPECT_TRUE(session.CompletePredicate("CR").empty());  // subject, not pred

  // 2. rules.
  auto added = session.AddRulesText(
      "c2: quad(x, coach, y, t) & quad(x, coach, z, t') & y != z "
      "-> disjoint(t, t') .");
  ASSERT_TRUE(added.ok()) << added.status().ToString();
  EXPECT_EQ(*added, 1u);
  EXPECT_TRUE(session.ValidateRules(rules::SolverKind::kPsl).empty());

  // 3. compute.
  auto report = session.DetectConflicts();
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->NumConflicts(), 1u);

  ResolveOptions options;
  auto result = session.Resolve(options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->removed_facts.size(), 1u);

  // 4. browse.
  std::string description = session.DescribeConflict(report->conflicts[0]);
  EXPECT_NE(description.find("Napoli"), std::string::npos);
  EXPECT_NE(description.find("Chelsea"), std::string::npos);

  // Stats.
  auto stats = session.GraphStats();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->num_facts, 5u);
  EXPECT_EQ(stats->num_distinct_predicates, 3u);
}

TEST(Session, ErrorsWithoutGraph) {
  Session session;
  EXPECT_FALSE(session.DetectConflicts().ok());
  EXPECT_FALSE(session.Resolve(ResolveOptions()).ok());
  EXPECT_FALSE(session.GraphStats().ok());
}

TEST(Resolver, MlnAndPslAgreeOnRunningExample) {
  rules::RuleSet rules = PaperRules();
  rdf::TemporalGraph g1 = datagen::RunningExampleGraph(true);
  rdf::TemporalGraph g2 = datagen::RunningExampleGraph(true);
  ResolveOptions mln_options;
  mln_options.solver = rules::SolverKind::kMln;
  ResolveOptions psl_options;
  psl_options.solver = rules::SolverKind::kPsl;
  auto mln_result = Resolver(&g1, rules, mln_options).Run();
  auto psl_result = Resolver(&g2, rules, psl_options).Run();
  ASSERT_TRUE(mln_result.ok());
  ASSERT_TRUE(psl_result.ok());
  EXPECT_EQ(KeptSignatures(g1, *mln_result), KeptSignatures(g2, *psl_result));
}

}  // namespace
}  // namespace core
}  // namespace tecore
