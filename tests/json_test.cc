#include "util/json.h"

#include <gtest/gtest.h>

#include "util/string_util.h"

namespace tecore {
namespace util {
namespace {

TEST(Json, BuildAndDumpDeterministic) {
  Json obj = Json::Object();
  obj.Set("version", Json::Int(3))
      .Set("ok", Json::Bool(true))
      .Set("name", Json::Str("coach \"Ranieri\"\n"))
      .Set("score", Json::Number(0.25))
      .Set("nothing", Json::Null());
  Json arr = Json::Array();
  arr.Append(Json::Int(1));
  arr.Append(Json::Int(2));
  obj.Set("ids", std::move(arr));
  EXPECT_EQ(obj.Dump(),
            "{\"version\":3,\"ok\":true,"
            "\"name\":\"coach \\\"Ranieri\\\"\\n\",\"score\":0.25,"
            "\"nothing\":null,\"ids\":[1,2]}");
}

TEST(Json, ParseRoundTrip) {
  const std::string text =
      "{\"a\":[1,2.5,-3],\"b\":{\"c\":\"x\\ty\"},\"d\":false,\"e\":null}";
  auto parsed = Json::Parse(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->Dump(), text);
  const Json* a = parsed->Find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_EQ(a->items().size(), 3u);
  EXPECT_EQ(a->items()[0].int_value(), 1);
  EXPECT_EQ(a->items()[1].number_value(), 2.5);
  EXPECT_EQ(a->items()[2].int_value(), -3);
  EXPECT_EQ(parsed->Find("b")->GetString("c", ""), "x\ty");
  EXPECT_FALSE(parsed->GetBool("d", true));
  EXPECT_TRUE(parsed->Find("e")->is_null());
}

TEST(Json, DoubleRoundTripIsBitExact) {
  for (double v : {0.1, 1.0 / 3.0, 1e-17, 12345.6789, 2.2250738585072014e-308}) {
    Json j = Json::Number(v);
    auto back = Json::Parse(j.Dump());
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(back->number_value(), v) << FormatDoubleExact(v);
  }
}

TEST(Json, TypedAccessorsWithDefaults) {
  auto parsed = Json::Parse("{\"threads\":4,\"solver\":\"psl\"}");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->GetInt("threads", 0), 4);
  EXPECT_EQ(parsed->GetInt("missing", 7), 7);
  EXPECT_EQ(parsed->GetString("solver", "mln"), "psl");
  EXPECT_EQ(parsed->GetString("missing", "mln"), "mln");
  EXPECT_EQ(parsed->GetNumber("threads", 0.0), 4.0);
}

TEST(Json, UnicodeEscapes) {
  auto parsed = Json::Parse("\"a\\u0041\\u00e9\"");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->string_value(), "aA\xc3\xa9");
  // Control characters are re-escaped on output.
  EXPECT_EQ(Json::Str(std::string("\x01", 1)).Dump(), "\"\\u0001\"");
}

TEST(Json, ParseErrors) {
  EXPECT_FALSE(Json::Parse("").ok());
  EXPECT_FALSE(Json::Parse("{\"a\":}").ok());
  EXPECT_FALSE(Json::Parse("[1,2").ok());
  EXPECT_FALSE(Json::Parse("\"unterminated").ok());
  EXPECT_FALSE(Json::Parse("{} trailing").ok());
  EXPECT_FALSE(Json::Parse("nul").ok());
  // Deep nesting is bounded, not a stack overflow.
  std::string deep(100, '[');
  EXPECT_FALSE(Json::Parse(deep).ok());
}

TEST(Json, SetOverwrites) {
  Json obj = Json::Object();
  obj.Set("k", Json::Int(1));
  obj.Set("k", Json::Int(2));
  EXPECT_EQ(obj.Dump(), "{\"k\":2}");
}

}  // namespace
}  // namespace util
}  // namespace tecore
