#include <gtest/gtest.h>

#include "logic/atom.h"
#include "logic/eval.h"
#include "logic/variable.h"

namespace tecore {
namespace logic {
namespace {

using temporal::Interval;

TEST(VarTable, SortsAreEnforced) {
  VarTable vars;
  auto x = vars.FindOrAdd("x", Sort::kEntity);
  ASSERT_TRUE(x.ok());
  auto x_again = vars.FindOrAdd("x", Sort::kEntity);
  ASSERT_TRUE(x_again.ok());
  EXPECT_EQ(*x, *x_again);
  EXPECT_FALSE(vars.FindOrAdd("x", Sort::kInterval).ok());
  EXPECT_EQ(vars.NumVars(), 1);
  EXPECT_FALSE(vars.Find("y").ok());
  auto t = vars.FindOrAdd("t", Sort::kInterval);
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(vars.VarsOfSort(Sort::kInterval),
            std::vector<VarId>{*t});
}

class EvalTest : public ::testing::Test {
 protected:
  EvalTest() {
    x_ = *vars_.FindOrAdd("x", Sort::kEntity);
    t_ = *vars_.FindOrAdd("t", Sort::kInterval);
    u_ = *vars_.FindOrAdd("u", Sort::kInterval);
  }

  VarTable vars_;
  VarId x_, t_, u_;
  rdf::Dictionary dict_;
};

TEST_F(EvalTest, IntervalExpressions) {
  Binding binding(vars_);
  binding.BindInterval(t_, Interval(2000, 2004));
  binding.BindInterval(u_, Interval(2001, 2003));

  auto var_value = EvalInterval(IntervalExpr::Var(t_), binding);
  ASSERT_TRUE(var_value.has_value());
  EXPECT_EQ(*var_value, Interval(2000, 2004));

  auto intersect = EvalInterval(
      IntervalExpr::Intersect(IntervalExpr::Var(t_), IntervalExpr::Var(u_)),
      binding);
  ASSERT_TRUE(intersect.has_value());
  EXPECT_EQ(*intersect, Interval(2001, 2003));

  auto hull = EvalInterval(
      IntervalExpr::Hull(IntervalExpr::Var(t_),
                         IntervalExpr::Const(Interval(2010, 2012))),
      binding);
  ASSERT_TRUE(hull.has_value());
  EXPECT_EQ(*hull, Interval(2000, 2012));

  // Disjoint intersection -> no value.
  auto empty = EvalInterval(
      IntervalExpr::Intersect(IntervalExpr::Var(t_),
                              IntervalExpr::Const(Interval(2010, 2012))),
      binding);
  EXPECT_FALSE(empty.has_value());

  // Unbound variable -> no value.
  Binding unbound(vars_);
  EXPECT_FALSE(EvalInterval(IntervalExpr::Var(t_), unbound).has_value());
}

TEST_F(EvalTest, ArithmeticOverIntervalsAndInts) {
  Binding binding(vars_);
  binding.BindInterval(t_, Interval(1984, 1986));
  binding.BindEntity(x_, dict_.InternInt(1951));

  auto begin = EvalArith(ArithExpr::Begin(IntervalExpr::Var(t_)), binding,
                         dict_);
  ASSERT_TRUE(begin.ok());
  EXPECT_EQ(*begin, 1984);

  auto duration = EvalArith(ArithExpr::Duration(IntervalExpr::Var(t_)),
                            binding, dict_);
  ASSERT_TRUE(duration.ok());
  EXPECT_EQ(*duration, 3);

  // begin(t) - x = 1984 - 1951 = 33 (CR's age at career start).
  auto age = EvalArith(
      ArithExpr::Sub(ArithExpr::Begin(IntervalExpr::Var(t_)),
                     ArithExpr::EntityVar(x_)),
      binding, dict_);
  ASSERT_TRUE(age.ok());
  EXPECT_EQ(*age, 33);

  // Arithmetic over an IRI-valued entity is a type error.
  Binding bad(vars_);
  bad.BindEntity(x_, dict_.InternIri("Chelsea"));
  bad.BindInterval(t_, Interval(0, 1));
  EXPECT_FALSE(EvalArith(ArithExpr::EntityVar(x_), bad, dict_).ok());
}

TEST_F(EvalTest, NumericComparisonOps) {
  Binding binding(vars_);
  binding.BindInterval(t_, Interval(10, 20));
  auto check = [&](CompareOp op, int64_t rhs, bool expected) {
    NumericAtom atom;
    atom.op = op;
    atom.lhs = ArithExpr::Begin(IntervalExpr::Var(t_));
    atom.rhs = ArithExpr::Number(rhs);
    auto result = EvalNumeric(atom, binding, dict_);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(*result, expected) << static_cast<int>(op) << " " << rhs;
  };
  check(CompareOp::kLt, 11, true);
  check(CompareOp::kLt, 10, false);
  check(CompareOp::kLe, 10, true);
  check(CompareOp::kGt, 9, true);
  check(CompareOp::kGe, 10, true);
  check(CompareOp::kEq, 10, true);
  check(CompareOp::kNe, 10, false);
}

TEST_F(EvalTest, AllenConditionEvaluation) {
  Binding binding(vars_);
  binding.BindInterval(t_, Interval(2000, 2004));
  binding.BindInterval(u_, Interval(2001, 2003));
  AllenAtom disjoint;
  disjoint.relations = temporal::AllenSet::Disjoint();
  disjoint.a = IntervalExpr::Var(t_);
  disjoint.b = IntervalExpr::Var(u_);
  auto value = EvalAllen(disjoint, binding);
  ASSERT_TRUE(value.has_value());
  EXPECT_FALSE(*value);  // they overlap

  AllenAtom contains;
  contains.relations = temporal::AllenSet(temporal::AllenRelation::kContains);
  contains.a = IntervalExpr::Var(t_);
  contains.b = IntervalExpr::Var(u_);
  value = EvalAllen(contains, binding);
  ASSERT_TRUE(value.has_value());
  EXPECT_TRUE(*value);
}

TEST_F(EvalTest, TermCompare) {
  Binding binding(vars_);
  binding.BindEntity(x_, dict_.InternIri("Chelsea"));
  TermCompareAtom same;
  same.equal = true;
  same.lhs = EntityArg::Var(x_);
  same.rhs = EntityArg::Const(rdf::Term::Iri("Chelsea"));
  auto eq = EvalTermCompare(same, binding, &dict_);
  ASSERT_TRUE(eq.ok());
  EXPECT_TRUE(*eq);

  TermCompareAtom diff;
  diff.equal = false;
  diff.lhs = EntityArg::Var(x_);
  diff.rhs = EntityArg::Const(rdf::Term::Iri("Napoli"));
  auto ne = EvalTermCompare(diff, binding, &dict_);
  ASSERT_TRUE(ne.ok());
  EXPECT_TRUE(*ne);
}

TEST_F(EvalTest, ConditionVariantDispatch) {
  Binding binding(vars_);
  binding.BindInterval(t_, Interval(1, 2));
  binding.BindInterval(u_, Interval(5, 6));
  AllenAtom before;
  before.relations = temporal::AllenSet(temporal::AllenRelation::kBefore);
  before.a = IntervalExpr::Var(t_);
  before.b = IntervalExpr::Var(u_);
  ConditionAtom cond(before);
  auto value = EvalCondition(cond, binding, &dict_);
  ASSERT_TRUE(value.ok());
  EXPECT_TRUE(*value);
}

TEST(AtomToString, RendersReadably) {
  VarTable vars;
  VarId x = *vars.FindOrAdd("x", Sort::kEntity);
  VarId t = *vars.FindOrAdd("t", Sort::kInterval);
  QuadAtom atom;
  atom.subject = EntityArg::Var(x);
  atom.predicate = EntityArg::Const(rdf::Term::Iri("coach"));
  atom.object = EntityArg::Const(rdf::Term::Iri("Chelsea"));
  atom.time = IntervalExpr::Var(t);
  EXPECT_EQ(atom.ToString(vars), "quad(x, coach, Chelsea, t)");

  ArithExpr age = ArithExpr::Sub(ArithExpr::Begin(IntervalExpr::Var(t)),
                                 ArithExpr::Number(1951));
  EXPECT_EQ(age.ToString(vars), "begin(t) - 1951");
}

TEST(CollectVars, FindsAllVariables) {
  VarTable vars;
  VarId x = *vars.FindOrAdd("x", Sort::kEntity);
  VarId t = *vars.FindOrAdd("t", Sort::kInterval);
  VarId u = *vars.FindOrAdd("u", Sort::kInterval);
  QuadAtom atom;
  atom.subject = EntityArg::Var(x);
  atom.predicate = EntityArg::Const(rdf::Term::Iri("p"));
  atom.object = EntityArg::Const(rdf::Term::Iri("o"));
  atom.time = IntervalExpr::Intersect(IntervalExpr::Var(t),
                                      IntervalExpr::Var(u));
  std::vector<VarId> evars, ivars;
  atom.CollectVars(&evars, &ivars);
  EXPECT_EQ(evars, std::vector<VarId>{x});
  EXPECT_EQ(ivars, (std::vector<VarId>{t, u}));
}

}  // namespace
}  // namespace logic
}  // namespace tecore
