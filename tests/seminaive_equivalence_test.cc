// Semi-naive delta grounding must produce exactly the same ground network
// as naive fixpoint evaluation — same atoms (with evidence flags and prior
// weights) and same clauses — on every datagen workload. Atom ids may be
// assigned in a different order between the two modes, so the comparison
// canonicalizes atoms to (s, p, o, interval) keys and clauses to sorted
// signed-key multisets.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include "datagen/generators.h"
#include "ground/grounder.h"
#include "rules/library.h"
#include "rules/parser.h"
#include "util/string_util.h"

namespace tecore {
namespace ground {
namespace {

std::string AtomKey(const GroundNetwork& net, AtomId id) {
  const GroundAtom& a = net.atom(id);
  return StringPrintf("%u|%u|%u|%lld|%lld", a.subject, a.predicate, a.object,
                      static_cast<long long>(a.interval.begin()),
                      static_cast<long long>(a.interval.end()));
}

/// Canonical form of a network: atom key -> (evidence, prior) plus the
/// sorted multiset of canonicalized clauses.
struct Canonical {
  std::map<std::string, std::pair<bool, double>> atoms;
  std::vector<std::string> clauses;
};

Canonical Canonicalize(const GroundNetwork& net) {
  Canonical out;
  for (AtomId id = 0; id < net.NumAtoms(); ++id) {
    const GroundAtom& a = net.atom(id);
    out.atoms[AtomKey(net, id)] = {a.is_evidence, a.prior_weight};
  }
  for (const GroundClause& clause : net.clauses()) {
    std::vector<std::string> lits;
    for (int32_t lit : clause.literals) {
      lits.push_back((LiteralSign(lit) ? "+" : "-") +
                     AtomKey(net, LiteralAtom(lit)));
    }
    std::sort(lits.begin(), lits.end());
    std::string key = clause.hard ? "hard"
                                  : StringPrintf("soft:%.9f", clause.weight);
    key += StringPrintf("|rule=%d|", clause.rule_index);
    for (const std::string& lit : lits) key += lit + " ";
    out.clauses.push_back(std::move(key));
  }
  std::sort(out.clauses.begin(), out.clauses.end());
  return out;
}

void ExpectEquivalent(rdf::TemporalGraph* graph, const rules::RuleSet& rules) {
  GroundingOptions naive;
  naive.semi_naive = false;

  Grounder naive_grounder(graph, rules, naive);
  auto naive_result = naive_grounder.Run();
  ASSERT_TRUE(naive_result.ok()) << naive_result.status().ToString();
  Canonical a = Canonicalize(naive_result->network);

  // The semi-naive path must match naive at every grounding thread count
  // (1 = sequential direct emission, >1 = parallel passes + merge).
  for (int ground_threads : {1, 2, 4}) {
    GroundingOptions delta;
    delta.semi_naive = true;
    delta.num_threads = ground_threads;

    Grounder delta_grounder(graph, rules, delta);
    auto delta_result = delta_grounder.Run();
    ASSERT_TRUE(delta_result.ok()) << delta_result.status().ToString();

    EXPECT_EQ(naive_result->network.NumAtoms(),
              delta_result->network.NumAtoms());
    EXPECT_EQ(naive_result->network.NumClauses(),
              delta_result->network.NumClauses());
    EXPECT_EQ(naive_result->num_groundings, delta_result->num_groundings);
    EXPECT_EQ(naive_result->num_satisfied_heads,
              delta_result->num_satisfied_heads);

    Canonical b = Canonicalize(delta_result->network);
    EXPECT_EQ(a.atoms, b.atoms) << "ground_threads=" << ground_threads;
    EXPECT_EQ(a.clauses, b.clauses) << "ground_threads=" << ground_threads;
  }
}

TEST(SemiNaiveEquivalence, RunningExampleConstraints) {
  rdf::TemporalGraph graph = datagen::RunningExampleGraph(true);
  auto rules = rules::ParseRules(R"(
    c2: quad(x, coach, y, t) & quad(x, coach, z, t') & y != z
        -> disjoint(t, t') .
  )");
  ASSERT_TRUE(rules.ok());
  ExpectEquivalent(&graph, *rules);
}

TEST(SemiNaiveEquivalence, RunningExampleChainedInference) {
  rdf::TemporalGraph graph = datagen::RunningExampleGraph(true);
  // f1 feeds f2: grounding needs several fixpoint rounds, which is where
  // naive and semi-naive evaluation genuinely diverge in work done.
  auto rules = rules::ParseRules(R"(
    f1: quad(x, playsFor, y, t) -> quad(x, worksFor, y, t) w = 2.5 .
    f2: quad(x, worksFor, y, t) & quad(y, locatedIn, z, t')
        [intersects(t, t')] -> quad(x, livesIn, z, t ^ t') w = 1.6 .
  )");
  ASSERT_TRUE(rules.ok());
  ExpectEquivalent(&graph, *rules);
}

TEST(SemiNaiveEquivalence, FootballDbFullRules) {
  datagen::FootballDbOptions gen;
  gen.num_players = 120;
  datagen::GeneratedKg kg = datagen::GenerateFootballDb(gen);
  auto constraints = rules::FootballConstraints();
  auto inference = rules::FootballInferenceRules();
  ASSERT_TRUE(constraints.ok());
  ASSERT_TRUE(inference.ok());
  rules::RuleSet full = *constraints;
  full.Merge(*inference);
  ExpectEquivalent(&kg.graph, full);
}

TEST(SemiNaiveEquivalence, WikidataConstraints) {
  datagen::WikidataOptions gen;
  gen.target_facts = 4000;
  datagen::GeneratedKg kg = datagen::GenerateWikidata(gen);
  auto constraints = rules::WikidataConstraints();
  ASSERT_TRUE(constraints.ok());
  ExpectEquivalent(&kg.graph, *constraints);
}

TEST(SemiNaiveEquivalence, AtomsSinceTracksTheFrontier) {
  // The frontier hook used by semi-naive rounds: ids at or after `since`.
  GroundNetwork net;
  for (rdf::TermId t = 0; t < 5; ++t) {
    net.GetOrAddAtom(t, 100, 200, temporal::Interval(1, 2), true, 0.1, t);
  }
  EXPECT_EQ(net.AtomsSince(0).size(), 5u);
  EXPECT_EQ(net.AtomsSince(3).size(), 2u);
  EXPECT_EQ(net.AtomsSince(3)[0], 3u);
  EXPECT_TRUE(net.AtomsSince(5).empty());
}

}  // namespace
}  // namespace ground
}  // namespace tecore
