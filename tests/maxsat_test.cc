#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "maxsat/exact.h"
#include "maxsat/local_search.h"
#include "maxsat/wcnf.h"
#include "util/random.h"

namespace tecore {
namespace maxsat {
namespace {

/// Brute-force reference: minimum violated soft weight over feasible
/// assignments; infinity when hard clauses are unsatisfiable.
double BruteForceOptimum(const Wcnf& wcnf) {
  const int n = wcnf.num_vars();
  double best = std::numeric_limits<double>::infinity();
  for (uint64_t mask = 0; mask < (1ULL << n); ++mask) {
    std::vector<bool> assignment(static_cast<size_t>(n));
    for (int v = 0; v < n; ++v) assignment[static_cast<size_t>(v)] = (mask >> v) & 1;
    size_t hard_bad = 0;
    double violated = wcnf.ViolatedSoftWeight(assignment, &hard_bad);
    if (hard_bad == 0) best = std::min(best, violated);
  }
  return best;
}

Wcnf RandomInstance(Rng* rng, int num_vars, int num_clauses,
                    double hard_fraction) {
  Wcnf wcnf(num_vars);
  for (int c = 0; c < num_clauses; ++c) {
    const int len = 1 + static_cast<int>(rng->Uniform(3));
    std::vector<Literal> lits;
    for (int i = 0; i < len; ++i) {
      int var = static_cast<int>(rng->Uniform(static_cast<uint64_t>(num_vars)));
      lits.push_back(rng->Bernoulli(0.5) ? PosLit(var) : NegLit(var));
    }
    if (rng->Bernoulli(hard_fraction)) {
      wcnf.AddHard(std::move(lits));
    } else {
      wcnf.AddSoft(std::move(lits), 0.1 + rng->NextDouble() * 3.0);
    }
  }
  return wcnf;
}

TEST(Wcnf, BookkeepingAndEvaluation) {
  Wcnf wcnf;
  wcnf.AddHard({PosLit(0), NegLit(1)});
  wcnf.AddSoft({PosLit(1)}, 2.0);
  wcnf.AddSoft({NegLit(0), PosLit(2)}, 1.5);
  EXPECT_EQ(wcnf.num_vars(), 3);
  EXPECT_EQ(wcnf.NumHard(), 1u);
  EXPECT_EQ(wcnf.NumSoft(), 2u);
  EXPECT_DOUBLE_EQ(wcnf.TotalSoftWeight(), 3.5);

  std::vector<bool> assignment{true, true, false};
  size_t hard_bad = 9;
  double violated = wcnf.ViolatedSoftWeight(assignment, &hard_bad);
  EXPECT_EQ(hard_bad, 0u);  // x0 satisfies the hard clause
  EXPECT_DOUBLE_EQ(violated, 1.5);
  EXPECT_TRUE(wcnf.IsFeasible(assignment));

  std::string dimacs = wcnf.ToString();
  EXPECT_NE(dimacs.find("p wcnf 3 3"), std::string::npos);
  EXPECT_NE(dimacs.find("h 1 -2 0"), std::string::npos);
}

TEST(ExactSolver, TrivialAndUnsatisfiable) {
  Wcnf empty;
  MaxSatResult result = ExactMaxSatSolver(empty).Solve();
  EXPECT_TRUE(result.feasible);
  EXPECT_TRUE(result.optimal);

  Wcnf unsat;
  unsat.AddHard({PosLit(0)});
  unsat.AddHard({NegLit(0)});
  result = ExactMaxSatSolver(unsat).Solve();
  EXPECT_FALSE(result.feasible);
}

TEST(ExactSolver, PicksTheHeavierSide) {
  // Conflict between two unit softs: keep the heavier one.
  Wcnf wcnf;
  wcnf.AddHard({NegLit(0), NegLit(1)});  // not both
  wcnf.AddSoft({PosLit(0)}, 0.9);
  wcnf.AddSoft({PosLit(1)}, 0.6);
  MaxSatResult result = ExactMaxSatSolver(wcnf).Solve();
  ASSERT_TRUE(result.feasible);
  EXPECT_TRUE(result.optimal);
  EXPECT_TRUE(result.assignment[0]);
  EXPECT_FALSE(result.assignment[1]);
  EXPECT_NEAR(result.violated_weight, 0.6, 1e-12);
}

TEST(ExactSolver, UnitPropagationChains) {
  // Hard chain forces everything.
  Wcnf wcnf;
  wcnf.AddHard({PosLit(0)});
  wcnf.AddHard({NegLit(0), PosLit(1)});
  wcnf.AddHard({NegLit(1), PosLit(2)});
  wcnf.AddSoft({NegLit(2)}, 5.0);  // must be violated
  MaxSatResult result = ExactMaxSatSolver(wcnf).Solve();
  ASSERT_TRUE(result.feasible);
  EXPECT_TRUE(result.assignment[0]);
  EXPECT_TRUE(result.assignment[1]);
  EXPECT_TRUE(result.assignment[2]);
  EXPECT_NEAR(result.violated_weight, 5.0, 1e-12);
}

TEST(ExactSolver, MatchesBruteForceOnRandomInstances) {
  Rng rng(2024);
  for (int trial = 0; trial < 60; ++trial) {
    Wcnf wcnf = RandomInstance(&rng, 2 + static_cast<int>(rng.Uniform(9)),
                               3 + static_cast<int>(rng.Uniform(20)), 0.3);
    double expected = BruteForceOptimum(wcnf);
    MaxSatResult result = ExactMaxSatSolver(wcnf).Solve();
    if (std::isinf(expected)) {
      EXPECT_FALSE(result.feasible) << wcnf.ToString();
    } else {
      ASSERT_TRUE(result.feasible) << wcnf.ToString();
      EXPECT_TRUE(result.optimal);
      EXPECT_NEAR(result.violated_weight, expected, 1e-9) << wcnf.ToString();
      // Reported weights must match a re-evaluation of the assignment.
      size_t hard_bad = 0;
      EXPECT_NEAR(wcnf.ViolatedSoftWeight(result.assignment, &hard_bad),
                  result.violated_weight, 1e-9);
      EXPECT_EQ(hard_bad, 0u);
    }
  }
}

TEST(ExactSolver, NodeLimitDegradesGracefully) {
  Rng rng(5);
  Wcnf wcnf = RandomInstance(&rng, 18, 60, 0.2);
  ExactSolverOptions options;
  options.max_nodes = 50;
  MaxSatResult result = ExactMaxSatSolver(wcnf, options).Solve();
  // May or may not find the optimum, but must not claim optimality.
  EXPECT_FALSE(result.optimal && result.search_steps > options.max_nodes);
}

TEST(WalkSat, SolvesEasyInstancesExactly) {
  Rng rng(77);
  for (int trial = 0; trial < 20; ++trial) {
    Wcnf wcnf = RandomInstance(&rng, 2 + static_cast<int>(rng.Uniform(7)),
                               3 + static_cast<int>(rng.Uniform(12)), 0.2);
    double expected = BruteForceOptimum(wcnf);
    if (std::isinf(expected)) continue;  // local search can't prove unsat
    WalkSatOptions options;
    options.max_flips = 20000;
    options.seed = 1000 + static_cast<uint64_t>(trial);
    MaxSatResult result = WalkSatSolver(wcnf, options).Solve();
    ASSERT_TRUE(result.feasible) << wcnf.ToString();
    // Local search reaches the optimum on these tiny instances.
    EXPECT_NEAR(result.violated_weight, expected, 1e-9) << wcnf.ToString();
    EXPECT_FALSE(result.optimal);  // but never claims proof
  }
}

TEST(WalkSat, RespectsInitialAssignmentPreference) {
  // Pure soft units: greedy init already optimal; zero flips needed.
  Wcnf wcnf;
  wcnf.AddSoft({PosLit(0)}, 2.0);
  wcnf.AddSoft({NegLit(1)}, 2.0);
  MaxSatResult result = WalkSatSolver(wcnf).Solve();
  ASSERT_TRUE(result.feasible);
  EXPECT_TRUE(result.assignment[0]);
  EXPECT_FALSE(result.assignment[1]);
  EXPECT_NEAR(result.violated_weight, 0.0, 1e-12);
}

TEST(WalkSat, FindsFeasibilityOnHardConstraints) {
  // A small pigeonhole-free hard instance; WalkSAT must satisfy all.
  Wcnf wcnf;
  wcnf.AddHard({PosLit(0), PosLit(1)});
  wcnf.AddHard({NegLit(0), NegLit(1)});
  wcnf.AddHard({PosLit(2)});
  WalkSatOptions options;
  options.max_flips = 10000;
  MaxSatResult result = WalkSatSolver(wcnf, options).Solve();
  ASSERT_TRUE(result.feasible);
  EXPECT_NE(result.assignment[0], result.assignment[1]);
  EXPECT_TRUE(result.assignment[2]);
}

}  // namespace
}  // namespace maxsat
}  // namespace tecore
