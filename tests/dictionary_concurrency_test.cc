// The sharded dictionary must behave exactly like the old single-map
// implementation under single-threaded use (dense ids in insertion order)
// and stay consistent under concurrent interning: every id in [0, Size())
// names exactly one term, the same term always gets the same id on every
// thread, and string <-> id round trips agree with a single-threaded
// reference run on the same term universe.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "rdf/dictionary.h"
#include "util/string_util.h"

namespace tecore {
namespace rdf {
namespace {

/// The shared term universe: IRIs, literals and ints with many cross-thread
/// duplicates so the shards see real get-vs-insert races.
std::vector<Term> TermUniverse(size_t n) {
  std::vector<Term> terms;
  terms.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    switch (i % 3) {
      case 0:
        terms.push_back(Term::Iri(StringPrintf("iri_%zu", i / 3 % 500)));
        break;
      case 1:
        terms.push_back(
            Term::Literal(StringPrintf("lit_%zu", i / 3 % 311)));
        break;
      default:
        terms.push_back(Term::IntLiteral(static_cast<int64_t>(i / 3 % 97)));
        break;
    }
  }
  return terms;
}

TEST(DictionaryConcurrency, SingleThreadedIdsAreInsertionOrdered) {
  // The exact contract the grounder's canonical-order merge relies on.
  Dictionary dict;
  EXPECT_EQ(dict.InternIri("a"), 0u);
  EXPECT_EQ(dict.InternIri("b"), 1u);
  EXPECT_EQ(dict.InternIri("a"), 0u);
  EXPECT_EQ(dict.InternInt(7), 2u);
  EXPECT_EQ(dict.Size(), 3u);
}

TEST(DictionaryConcurrency, HammeredInterningStaysDenseAndConsistent) {
  const size_t kThreads = 8;
  const std::vector<Term> universe = TermUniverse(9000);

  Dictionary dict;
  std::vector<std::vector<TermId>> ids(kThreads);
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      ids[t].reserve(universe.size());
      // Each thread walks the universe from a different offset so shard
      // access patterns differ but the interned term set is identical.
      for (size_t i = 0; i < universe.size(); ++i) {
        const Term& term = universe[(i + t * 1013) % universe.size()];
        ids[t].push_back(dict.Intern(term));
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  // Same size as a single-threaded reference run over the same universe.
  Dictionary reference;
  for (const Term& term : universe) reference.Intern(term);
  ASSERT_EQ(dict.Size(), reference.Size());

  // Ids are dense: every id in [0, Size()) is hit by some Lookup round
  // trip, and each stored term maps back to its own id exactly once.
  std::vector<int> seen(dict.Size(), 0);
  for (TermId id = 0; id < dict.Size(); ++id) {
    const Term& term = dict.Lookup(id);
    auto found = dict.Find(term);
    ASSERT_TRUE(found.ok());
    EXPECT_EQ(*found, id) << "round trip broke for id " << id;
    ++seen[id];
  }
  EXPECT_TRUE(std::all_of(seen.begin(), seen.end(),
                          [](int c) { return c == 1; }));

  // Every thread observed the same term -> id mapping.
  for (size_t t = 0; t < kThreads; ++t) {
    for (size_t i = 0; i < universe.size(); ++i) {
      const Term& term = universe[(i + t * 1013) % universe.size()];
      EXPECT_EQ(dict.Lookup(ids[t][i]), term);
    }
  }

  // The interned term *set* matches the single-threaded reference (ids may
  // be permuted across runs; the mapping itself must agree as a set).
  std::map<std::string, TermId> concurrent_terms, reference_terms;
  for (TermId id = 0; id < dict.Size(); ++id) {
    concurrent_terms[dict.Lookup(id).ToString()] = id;
  }
  for (TermId id = 0; id < reference.Size(); ++id) {
    reference_terms[reference.Lookup(id).ToString()] = id;
  }
  ASSERT_EQ(concurrent_terms.size(), reference_terms.size());
  for (const auto& [text, id] : reference_terms) {
    EXPECT_EQ(concurrent_terms.count(text), 1u) << text;
  }
}

TEST(DictionaryConcurrency, ConcurrentFindDuringInterning) {
  // Readers racing writers on ids they already hold must never observe a
  // torn term. Writers publish ids through the per-shard map; this thread
  // re-reads its own completed interns while others keep inserting.
  const std::vector<Term> universe = TermUniverse(3000);
  Dictionary dict;
  std::vector<std::thread> writers;
  for (size_t t = 0; t < 4; ++t) {
    writers.emplace_back([&, t] {
      for (size_t i = 0; i < universe.size(); ++i) {
        const Term& term = universe[(i + t * 677) % universe.size()];
        TermId id = dict.Intern(term);
        EXPECT_EQ(dict.Lookup(id), term);
        auto found = dict.Find(term);
        EXPECT_TRUE(found.ok());
        EXPECT_EQ(*found, id);
      }
    });
  }
  for (std::thread& writer : writers) writer.join();
}

TEST(DictionaryConcurrency, CompleteIriStillWorksAfterConcurrentLoad) {
  Dictionary dict;
  std::vector<std::thread> writers;
  for (size_t t = 0; t < 4; ++t) {
    writers.emplace_back([&dict, t] {
      for (size_t i = 0; i < 200; ++i) {
        dict.InternIri(StringPrintf("plays_%zu", i));
        dict.InternIri(StringPrintf("coach_%zu_%zu", t, i));
      }
    });
  }
  for (std::thread& writer : writers) writer.join();
  EXPECT_EQ(dict.CompleteIri("plays_").size(), 200u);
  EXPECT_EQ(dict.CompleteIri("coach_").size(), 800u);
}

TEST(DictionaryConcurrency, MovePreservesContents) {
  Dictionary dict;
  TermId a = dict.InternIri("alpha");
  dict.InternIri("beta");
  Dictionary moved = std::move(dict);
  EXPECT_EQ(moved.Size(), 2u);
  EXPECT_EQ(moved.Lookup(a).lexical(), "alpha");
  Dictionary assigned;
  assigned.InternIri("gamma");
  assigned = std::move(moved);
  EXPECT_EQ(assigned.Size(), 2u);
  ASSERT_TRUE(assigned.FindIri("beta").ok());
}

}  // namespace
}  // namespace rdf
}  // namespace tecore
