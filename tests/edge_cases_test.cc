#include <gtest/gtest.h>

#include "core/resolver.h"
#include "datagen/generators.h"
#include "ground/grounder.h"
#include "rdf/io.h"
#include "rules/parser.h"
#include "rules/validator.h"

namespace tecore {
namespace {

// Targeted coverage of less-travelled paths across modules.

TEST(ParserEdge, SemicolonSeparatesStatements) {
  auto set = rules::ParseRules(
      "quad(x, p1, y, t) -> false ; quad(x, p2, y, t) -> false");
  ASSERT_TRUE(set.ok()) << set.status().ToString();
  EXPECT_EQ(set->Size(), 2u);
}

TEST(ParserEdge, HardKeywordAndInfinityAliases) {
  for (const char* weight : {"inf", "infinity", "hard"}) {
    auto rule = rules::ParseSingleRule(
        std::string("quad(x, p, y, t) -> false w = ") + weight + " .");
    ASSERT_TRUE(rule.ok()) << weight;
    EXPECT_TRUE(rule->hard) << weight;
  }
}

TEST(ParserEdge, NegativeIntervalLiteral) {
  auto rule = rules::ParseSingleRule(
      "quad(x, era, y, [-44, -27]) -> false .");
  ASSERT_TRUE(rule.ok()) << rule.status().ToString();
  EXPECT_EQ(rule->body[0].time.constant(), temporal::Interval(-44, -27));
}

TEST(ParserEdge, StringLiteralObject) {
  auto rule = rules::ParseSingleRule(
      "quad(x, label, \"the Tinkerman\", t) -> false .");
  ASSERT_TRUE(rule.ok()) << rule.status().ToString();
  EXPECT_EQ(rule->body[0].object.constant().kind(),
            rdf::TermKind::kLiteral);
}

TEST(ParserEdge, HullExpression) {
  auto rule = rules::ParseSingleRule(
      "quad(x, p, y, t) & quad(x, q, z, t') -> "
      "quad(x, spans, y, hull(t, t')) w = 1 .");
  ASSERT_TRUE(rule.ok()) << rule.status().ToString();
  EXPECT_EQ(rule->head.quads[0].time.kind(),
            logic::IntervalExpr::Kind::kHull);
}

TEST(ParserEdge, ConditionWithEndAccessorAndAddition) {
  auto rule = rules::ParseSingleRule(
      "quad(x, p, y, t) [end(t) + 5 < 2000] -> false .");
  ASSERT_TRUE(rule.ok()) << rule.status().ToString();
  EXPECT_TRUE(rules::ValidateRule(*rule).ok());
}

TEST(GrounderEdge, VariablePredicateFullScan) {
  rdf::TemporalGraph graph = datagen::RunningExampleGraph(false);
  // p is a variable predicate: matches every fact; the reflexivity head
  // is trivially satisfiable, so we count atoms only.
  auto rules = rules::ParseRules(
      "quad(x, p, y, t) -> quad(x, p, y, t) w = 1 .");
  ASSERT_TRUE(rules.ok());
  ground::GroundingOptions options;
  options.add_evidence_priors = false;
  ground::Grounder grounder(&graph, *rules, options);
  auto result = grounder.Run();
  ASSERT_TRUE(result.ok());
  // Head == body atom: tautological clauses are dropped, no derived atoms.
  EXPECT_EQ(result->network.NumAtoms(), graph.NumFacts());
  EXPECT_EQ(result->network.NumClauses(), 0u);
}

TEST(GrounderEdge, HullHeadDerivesSpanningFact) {
  rdf::TemporalGraph graph;
  ASSERT_TRUE(graph.AddQuad("a", "pp", "b", temporal::Interval(1, 2), 0.9).ok());
  ASSERT_TRUE(graph.AddQuad("a", "qq", "b", temporal::Interval(8, 9), 0.9).ok());
  auto rules = rules::ParseRules(
      "quad(x, pp, y, t) & quad(x, qq, y, t') -> "
      "quad(x, spans, y, hull(t, t')) w = 1 .");
  ASSERT_TRUE(rules.ok());
  ground::GroundingOptions options;
  options.add_evidence_priors = false;
  ground::Grounder grounder(&graph, *rules, options);
  auto result = grounder.Run();
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->network.NumAtoms(), 3u);
  EXPECT_EQ(result->network.atom(2).interval, temporal::Interval(1, 9));
}

TEST(GrounderEdge, ConstantSubjectPattern) {
  rdf::TemporalGraph graph = datagen::RunningExampleGraph(false);
  auto rules = rules::ParseRules(
      "quad(CR, coach, y, t) & quad(CR, coach, z, t') & y != z "
      "-> disjoint(t, t') .");
  ASSERT_TRUE(rules.ok());
  ground::GroundingOptions options;
  options.add_evidence_priors = false;
  ground::Grounder grounder(&graph, *rules, options);
  auto result = grounder.Run();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->network.NumClauses(), 1u);  // the Chelsea/Napoli clash
}

TEST(GrounderEdge, SoftConstraintEmitsWeightedConflictClause) {
  rdf::TemporalGraph graph = datagen::RunningExampleGraph(false);
  auto rules = rules::ParseRules(
      "soft_c2: quad(x, coach, y, t) & quad(x, coach, z, t') & y != z "
      "-> disjoint(t, t') w = 1.5 .");
  ASSERT_TRUE(rules.ok());
  ground::GroundingOptions options;
  options.add_evidence_priors = false;
  ground::Grounder grounder(&graph, *rules, options);
  auto result = grounder.Run();
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->network.NumClauses(), 1u);
  EXPECT_FALSE(result->network.clauses()[0].hard);
  EXPECT_DOUBLE_EQ(result->network.clauses()[0].weight, 1.5);
}

TEST(ResolverEdge, SoftConstraintCanBeOverridden) {
  // With a weak soft constraint, keeping both conflicting facts can beat
  // dropping one: 0.6 (Napoli kept) > 0.2 (constraint satisfied).
  rdf::TemporalGraph graph = datagen::RunningExampleGraph(false);
  auto weak = rules::ParseRules(
      "c2: quad(x, coach, y, t) & quad(x, coach, z, t') & y != z "
      "-> disjoint(t, t') w = 0.2 .");
  ASSERT_TRUE(weak.ok());
  core::ResolveOptions options;
  core::Resolver resolver(&graph, *weak, options);
  auto result = resolver.Run();
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->removed_facts.empty());

  // A strong soft constraint behaves like the hard one.
  rdf::TemporalGraph graph2 = datagen::RunningExampleGraph(false);
  auto strong = rules::ParseRules(
      "c2: quad(x, coach, y, t) & quad(x, coach, z, t') & y != z "
      "-> disjoint(t, t') w = 5 .");
  ASSERT_TRUE(strong.ok());
  core::Resolver resolver2(&graph2, *strong, options);
  auto result2 = resolver2.Run();
  ASSERT_TRUE(result2.ok());
  EXPECT_EQ(result2->removed_facts.size(), 1u);
}

TEST(ResolverEdge, InfeasibleHardEvidenceStillReportsFaithfully) {
  // Two confidence-1.0 facts in conflict: priors are soft (clamped), so
  // the problem stays feasible and the MAP drops one of them.
  rdf::TemporalGraph graph;
  ASSERT_TRUE(graph
                  .AddQuad("x", "coach", "A", temporal::Interval(0, 5), 1.0)
                  .ok());
  ASSERT_TRUE(graph
                  .AddQuad("x", "coach", "B", temporal::Interval(2, 7), 1.0)
                  .ok());
  auto constraints = rules::ParseRules(
      "c2: quad(x, coach, y, t) & quad(x, coach, z, t') & y != z "
      "-> disjoint(t, t') .");
  ASSERT_TRUE(constraints.ok());
  core::ResolveOptions options;
  core::Resolver resolver(&graph, *constraints, options);
  auto result = resolver.Run();
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->feasible);
  EXPECT_EQ(result->removed_facts.size(), 1u);
}

TEST(IoEdge, CommentInsideStringIsKept) {
  auto graph = rdf::ParseGraphText(
      "CR label \"the # is not a comment\" [2000] 0.9 .\n");
  ASSERT_TRUE(graph.ok()) << graph.status().ToString();
  EXPECT_EQ(graph->dict().Lookup(graph->fact(0).object).lexical(),
            "the # is not a comment");
}

TEST(IoEdge, WindowsLineEndingsAndTrailingBlankLines) {
  auto graph = rdf::ParseGraphText(
      "CR coach Chelsea [2000,2004] 0.9 .\r\n\r\n\n");
  ASSERT_TRUE(graph.ok()) << graph.status().ToString();
  EXPECT_EQ(graph->NumFacts(), 1u);
}

TEST(ValidatorEdge, VariablePredicateInHeadIsAllowedWhenBound) {
  auto rule = rules::ParseSingleRule(
      "quad(x, p, y, t) -> quad(y, p, x, t) w = 1 .");
  ASSERT_TRUE(rule.ok());
  EXPECT_TRUE(rules::ValidateRule(*rule).ok());
}

}  // namespace
}  // namespace tecore
