// Per-component MAP solving is parallelized with a chunked thread pool;
// components are independent and results are merged in component order, so
// a 4-thread run must be indistinguishable from a sequential run: same
// objective, same flip set (atom values), same diagnostics.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <string>
#include <vector>

#include "core/resolver.h"
#include "datagen/generators.h"
#include "ground/grounder.h"
#include "mln/solver.h"
#include "psl/solver.h"
#include "rules/library.h"
#include "util/thread_pool.h"

namespace tecore {
namespace {

ground::GroundingResult GroundFootball(size_t players, bool with_inference,
                                       int ground_threads = 0) {
  datagen::FootballDbOptions gen;
  gen.num_players = players;
  datagen::GeneratedKg kg = datagen::GenerateFootballDb(gen);
  auto constraints = rules::FootballConstraints();
  EXPECT_TRUE(constraints.ok());
  rules::RuleSet rules = *constraints;
  if (with_inference) {
    auto inference = rules::FootballInferenceRules();
    EXPECT_TRUE(inference.ok());
    rules.Merge(*inference);
  }
  ground::GroundingOptions options;
  options.num_threads = ground_threads;
  ground::Grounder grounder(&kg.graph, rules, options);
  auto result = grounder.Run();
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return std::move(*result);
}

/// Bit-identical network comparison: atom ids, atom payloads, clause
/// order, literals, weights — the parallel-grounding determinism contract,
/// strictly stronger than the canonicalized equivalence check.
void ExpectNetworksBitIdentical(const ground::GroundingResult& a,
                                const ground::GroundingResult& b) {
  ASSERT_EQ(a.network.NumAtoms(), b.network.NumAtoms());
  ASSERT_EQ(a.network.NumClauses(), b.network.NumClauses());
  EXPECT_EQ(a.num_groundings, b.num_groundings);
  EXPECT_EQ(a.num_satisfied_heads, b.num_satisfied_heads);
  EXPECT_EQ(a.rounds, b.rounds);
  for (ground::AtomId id = 0; id < a.network.NumAtoms(); ++id) {
    const ground::GroundAtom& x = a.network.atom(id);
    const ground::GroundAtom& y = b.network.atom(id);
    ASSERT_EQ(x.subject, y.subject) << "atom " << id;
    ASSERT_EQ(x.predicate, y.predicate) << "atom " << id;
    ASSERT_EQ(x.object, y.object) << "atom " << id;
    ASSERT_EQ(x.interval, y.interval) << "atom " << id;
    ASSERT_EQ(x.is_evidence, y.is_evidence) << "atom " << id;
    ASSERT_EQ(x.prior_weight, y.prior_weight) << "atom " << id;
    ASSERT_EQ(x.source_fact, y.source_fact) << "atom " << id;
  }
  for (size_t ci = 0; ci < a.network.NumClauses(); ++ci) {
    const ground::GroundClause& x = a.network.clauses()[ci];
    const ground::GroundClause& y = b.network.clauses()[ci];
    ASSERT_EQ(x.literals, y.literals) << "clause " << ci;
    ASSERT_EQ(x.weight, y.weight) << "clause " << ci;
    ASSERT_EQ(x.hard, y.hard) << "clause " << ci;
    ASSERT_EQ(x.rule_index, y.rule_index) << "clause " << ci;
  }
}

TEST(ThreadPool, ParallelForCoversEveryIndexOnce) {
  util::ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  for (auto& h : hits) h = 0;
  pool.ParallelFor(hits.size(), [&](size_t i) { ++hits[i]; });
  for (size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, SubmitAndWait) {
  util::ThreadPool pool(3);
  std::atomic<int> done{0};
  for (int i = 0; i < 32; ++i) pool.Submit([&] { ++done; });
  pool.Wait();
  EXPECT_EQ(done.load(), 32);
}

TEST(ThreadPool, ResolveThreadCount) {
  EXPECT_GE(util::ResolveThreadCount(0), 1);  // auto
  EXPECT_EQ(util::ResolveThreadCount(1), 1);
  EXPECT_EQ(util::ResolveThreadCount(4), 4);
}

TEST(ParallelDeterminism, GroundingBitIdenticalAcrossThreadCounts) {
  // The chained inference rules force several fixpoint rounds, so this
  // covers the parallel pass + canonical merge across rounds, not just the
  // round-0 evidence join.
  ground::GroundingResult one = GroundFootball(300, true, 1);
  ground::GroundingResult two = GroundFootball(300, true, 2);
  ground::GroundingResult four = GroundFootball(300, true, 4);
  EXPECT_GT(one.rounds, 1);
  ExpectNetworksBitIdentical(one, two);
  ExpectNetworksBitIdentical(one, four);
}

TEST(ParallelDeterminism, GroundingBitIdenticalOnWikidata) {
  datagen::WikidataOptions gen;
  gen.target_facts = 3000;
  auto constraints = rules::WikidataConstraints();
  ASSERT_TRUE(constraints.ok());
  std::vector<ground::GroundingResult> results;
  for (int threads : {1, 2, 4}) {
    datagen::GeneratedKg kg = datagen::GenerateWikidata(gen);
    ground::GroundingOptions options;
    options.num_threads = threads;
    ground::Grounder grounder(&kg.graph, *constraints, options);
    auto result = grounder.Run();
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    results.push_back(std::move(*result));
  }
  ExpectNetworksBitIdentical(results[0], results[1]);
  ExpectNetworksBitIdentical(results[0], results[2]);
}

TEST(ParallelDeterminism, EndToEndResolveMatchesAcrossGroundThreads) {
  // Full pipeline determinism: grounding threads and solver threads both
  // vary, output graphs must be byte-identical.
  auto constraints = rules::FootballConstraints();
  ASSERT_TRUE(constraints.ok());
  std::vector<std::string> outputs;
  for (int threads : {1, 4}) {
    datagen::FootballDbOptions gen;
    gen.num_players = 200;
    datagen::GeneratedKg kg = datagen::GenerateFootballDb(gen);
    core::ResolveOptions options;
    options.num_threads = threads;
    options.ground_threads = threads;
    core::Resolver resolver(&kg.graph, *constraints, options);
    auto result = resolver.Run();
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    std::string rendered;
    for (rdf::FactId id = 0; id < result->consistent_graph.NumFacts(); ++id) {
      rendered += result->consistent_graph.FactToString(id) + "\n";
    }
    outputs.push_back(std::move(rendered));
  }
  EXPECT_EQ(outputs[0], outputs[1]);
}

TEST(ParallelDeterminism, MlnObjectiveAndFlipSetMatchSequential) {
  ground::GroundingResult grounding = GroundFootball(600, false);
  mln::MlnSolverOptions sequential;
  sequential.num_threads = 1;
  mln::MlnSolverOptions parallel;
  parallel.num_threads = 4;

  mln::MlnMapSolver seq_solver(grounding.network, sequential);
  auto seq = seq_solver.Solve();
  ASSERT_TRUE(seq.ok());
  mln::MlnMapSolver par_solver(grounding.network, parallel);
  auto par = par_solver.Solve();
  ASSERT_TRUE(par.ok());

  EXPECT_EQ(seq->objective, par->objective);  // bit-identical, not approx
  EXPECT_EQ(seq->violated_weight, par->violated_weight);
  EXPECT_EQ(seq->atom_values, par->atom_values);
  EXPECT_EQ(seq->feasible, par->feasible);
  EXPECT_EQ(seq->optimal, par->optimal);
  EXPECT_EQ(seq->num_components, par->num_components);
  EXPECT_EQ(seq->largest_component, par->largest_component);
  EXPECT_EQ(seq->search_steps, par->search_steps);
  EXPECT_GT(seq->num_components, 1u);
}

TEST(ParallelDeterminism, MlnWalkSatBackendIsDeterministicToo) {
  ground::GroundingResult grounding = GroundFootball(600, false);
  mln::MlnSolverOptions sequential;
  sequential.backend = mln::MlnBackend::kWalkSat;
  sequential.num_threads = 1;
  mln::MlnSolverOptions parallel = sequential;
  parallel.num_threads = 4;

  mln::MlnMapSolver seq_solver(grounding.network, sequential);
  auto seq = seq_solver.Solve();
  ASSERT_TRUE(seq.ok());
  mln::MlnMapSolver par_solver(grounding.network, parallel);
  auto par = par_solver.Solve();
  ASSERT_TRUE(par.ok());

  // WalkSAT reseeds per component from the options, so thread interleaving
  // cannot leak into the search trajectory.
  EXPECT_EQ(seq->objective, par->objective);
  EXPECT_EQ(seq->atom_values, par->atom_values);
}

TEST(ParallelDeterminism, PslTruthValuesMatchSequential) {
  ground::GroundingResult grounding = GroundFootball(600, false);
  psl::PslSolverOptions sequential;
  sequential.num_threads = 1;
  psl::PslSolverOptions parallel;
  parallel.num_threads = 4;

  psl::PslSolver seq_solver(grounding.network, sequential);
  auto seq = seq_solver.Solve();
  ASSERT_TRUE(seq.ok());
  psl::PslSolver par_solver(grounding.network, parallel);
  auto par = par_solver.Solve();
  ASSERT_TRUE(par.ok());

  EXPECT_EQ(seq->truth_values, par->truth_values);  // bit-identical
  EXPECT_EQ(seq->atom_values, par->atom_values);
  EXPECT_EQ(seq->objective, par->objective);
  EXPECT_EQ(seq->energy, par->energy);
  EXPECT_EQ(seq->repair_flips, par->repair_flips);
  EXPECT_EQ(seq->num_components, par->num_components);
}

TEST(ParallelDeterminism, PslComponentDecompositionMatchesMonolithic) {
  // The consensus problem is separable: per-component ADMM and monolithic
  // ADMM round to the same Boolean state on the decoupled workload.
  ground::GroundingResult grounding = GroundFootball(600, false);
  psl::PslSolverOptions component_options;
  psl::PslSolverOptions monolithic_options;
  monolithic_options.use_components = false;

  psl::PslSolver comp_solver(grounding.network, component_options);
  auto comp = comp_solver.Solve();
  ASSERT_TRUE(comp.ok());
  psl::PslSolver mono_solver(grounding.network, monolithic_options);
  auto mono = mono_solver.Solve();
  ASSERT_TRUE(mono.ok());

  EXPECT_EQ(comp->feasible, mono->feasible);
  // Objectives agree up to rounding noise of the relaxation.
  EXPECT_NEAR(comp->objective, mono->objective,
              0.01 * std::max(1.0, mono->objective));
}

}  // namespace
}  // namespace tecore
