// Per-component MAP solving is parallelized with a chunked thread pool;
// components are independent and results are merged in component order, so
// a 4-thread run must be indistinguishable from a sequential run: same
// objective, same flip set (atom values), same diagnostics.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <vector>

#include "datagen/generators.h"
#include "ground/grounder.h"
#include "mln/solver.h"
#include "psl/solver.h"
#include "rules/library.h"
#include "util/thread_pool.h"

namespace tecore {
namespace {

ground::GroundingResult GroundFootball(size_t players, bool with_inference) {
  datagen::FootballDbOptions gen;
  gen.num_players = players;
  datagen::GeneratedKg kg = datagen::GenerateFootballDb(gen);
  auto constraints = rules::FootballConstraints();
  EXPECT_TRUE(constraints.ok());
  rules::RuleSet rules = *constraints;
  if (with_inference) {
    auto inference = rules::FootballInferenceRules();
    EXPECT_TRUE(inference.ok());
    rules.Merge(*inference);
  }
  ground::Grounder grounder(&kg.graph, rules);
  auto result = grounder.Run();
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return std::move(*result);
}

TEST(ThreadPool, ParallelForCoversEveryIndexOnce) {
  util::ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  for (auto& h : hits) h = 0;
  pool.ParallelFor(hits.size(), [&](size_t i) { ++hits[i]; });
  for (size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, SubmitAndWait) {
  util::ThreadPool pool(3);
  std::atomic<int> done{0};
  for (int i = 0; i < 32; ++i) pool.Submit([&] { ++done; });
  pool.Wait();
  EXPECT_EQ(done.load(), 32);
}

TEST(ThreadPool, ResolveThreadCount) {
  EXPECT_GE(util::ResolveThreadCount(0), 1);  // auto
  EXPECT_EQ(util::ResolveThreadCount(1), 1);
  EXPECT_EQ(util::ResolveThreadCount(4), 4);
}

TEST(ParallelDeterminism, MlnObjectiveAndFlipSetMatchSequential) {
  ground::GroundingResult grounding = GroundFootball(600, false);
  mln::MlnSolverOptions sequential;
  sequential.num_threads = 1;
  mln::MlnSolverOptions parallel;
  parallel.num_threads = 4;

  mln::MlnMapSolver seq_solver(grounding.network, sequential);
  auto seq = seq_solver.Solve();
  ASSERT_TRUE(seq.ok());
  mln::MlnMapSolver par_solver(grounding.network, parallel);
  auto par = par_solver.Solve();
  ASSERT_TRUE(par.ok());

  EXPECT_EQ(seq->objective, par->objective);  // bit-identical, not approx
  EXPECT_EQ(seq->violated_weight, par->violated_weight);
  EXPECT_EQ(seq->atom_values, par->atom_values);
  EXPECT_EQ(seq->feasible, par->feasible);
  EXPECT_EQ(seq->optimal, par->optimal);
  EXPECT_EQ(seq->num_components, par->num_components);
  EXPECT_EQ(seq->largest_component, par->largest_component);
  EXPECT_EQ(seq->search_steps, par->search_steps);
  EXPECT_GT(seq->num_components, 1u);
}

TEST(ParallelDeterminism, MlnWalkSatBackendIsDeterministicToo) {
  ground::GroundingResult grounding = GroundFootball(600, false);
  mln::MlnSolverOptions sequential;
  sequential.backend = mln::MlnBackend::kWalkSat;
  sequential.num_threads = 1;
  mln::MlnSolverOptions parallel = sequential;
  parallel.num_threads = 4;

  mln::MlnMapSolver seq_solver(grounding.network, sequential);
  auto seq = seq_solver.Solve();
  ASSERT_TRUE(seq.ok());
  mln::MlnMapSolver par_solver(grounding.network, parallel);
  auto par = par_solver.Solve();
  ASSERT_TRUE(par.ok());

  // WalkSAT reseeds per component from the options, so thread interleaving
  // cannot leak into the search trajectory.
  EXPECT_EQ(seq->objective, par->objective);
  EXPECT_EQ(seq->atom_values, par->atom_values);
}

TEST(ParallelDeterminism, PslTruthValuesMatchSequential) {
  ground::GroundingResult grounding = GroundFootball(600, false);
  psl::PslSolverOptions sequential;
  sequential.num_threads = 1;
  psl::PslSolverOptions parallel;
  parallel.num_threads = 4;

  psl::PslSolver seq_solver(grounding.network, sequential);
  auto seq = seq_solver.Solve();
  ASSERT_TRUE(seq.ok());
  psl::PslSolver par_solver(grounding.network, parallel);
  auto par = par_solver.Solve();
  ASSERT_TRUE(par.ok());

  EXPECT_EQ(seq->truth_values, par->truth_values);  // bit-identical
  EXPECT_EQ(seq->atom_values, par->atom_values);
  EXPECT_EQ(seq->objective, par->objective);
  EXPECT_EQ(seq->energy, par->energy);
  EXPECT_EQ(seq->repair_flips, par->repair_flips);
  EXPECT_EQ(seq->num_components, par->num_components);
}

TEST(ParallelDeterminism, PslComponentDecompositionMatchesMonolithic) {
  // The consensus problem is separable: per-component ADMM and monolithic
  // ADMM round to the same Boolean state on the decoupled workload.
  ground::GroundingResult grounding = GroundFootball(600, false);
  psl::PslSolverOptions component_options;
  psl::PslSolverOptions monolithic_options;
  monolithic_options.use_components = false;

  psl::PslSolver comp_solver(grounding.network, component_options);
  auto comp = comp_solver.Solve();
  ASSERT_TRUE(comp.ok());
  psl::PslSolver mono_solver(grounding.network, monolithic_options);
  auto mono = mono_solver.Solve();
  ASSERT_TRUE(mono.ok());

  EXPECT_EQ(comp->feasible, mono->feasible);
  // Objectives agree up to rounding noise of the relaxation.
  EXPECT_NEAR(comp->objective, mono->objective,
              0.01 * std::max(1.0, mono->objective));
}

}  // namespace
}  // namespace tecore
