#include <gtest/gtest.h>

#include <algorithm>

#include "temporal/interval_tree.h"
#include "util/random.h"

namespace tecore {
namespace temporal {
namespace {

TEST(IntervalTree, EmptyTree) {
  IntervalTree tree;
  EXPECT_TRUE(tree.Empty());
  EXPECT_TRUE(tree.Stab(5).empty());
  EXPECT_TRUE(tree.FindIntersecting(Interval(0, 10)).empty());
}

TEST(IntervalTree, SingleInterval) {
  IntervalTree tree;
  tree.Build({{Interval(2000, 2004), 7}});
  EXPECT_EQ(tree.Size(), 1u);
  EXPECT_EQ(tree.Stab(2002), std::vector<IntervalTree::PayloadId>{7});
  EXPECT_TRUE(tree.Stab(2005).empty());
  EXPECT_EQ(tree.FindIntersecting(Interval(2004, 2010)).size(), 1u);
  EXPECT_TRUE(tree.FindIntersecting(Interval(2005, 2010)).empty());
}

TEST(IntervalTree, RunningExampleOverlaps) {
  IntervalTree tree;
  tree.Build({{Interval(2000, 2004), 1},
              {Interval(2015, 2017), 2},
              {Interval(2001, 2003), 5}});
  auto hits = tree.FindIntersecting(Interval(2001, 2003));
  std::sort(hits.begin(), hits.end());
  EXPECT_EQ(hits, (std::vector<IntervalTree::PayloadId>{1, 5}));
}

TEST(IntervalTree, MatchesBruteForceOnRandomData) {
  Rng rng(1234);
  for (int trial = 0; trial < 50; ++trial) {
    const size_t n = 1 + rng.Uniform(200);
    std::vector<std::pair<Interval, IntervalTree::PayloadId>> entries;
    for (size_t i = 0; i < n; ++i) {
      int64_t b = rng.UniformRange(0, 500);
      entries.emplace_back(Interval(b, b + rng.UniformRange(0, 50)),
                           static_cast<IntervalTree::PayloadId>(i));
    }
    IntervalTree tree;
    tree.Build(entries);
    for (int q = 0; q < 20; ++q) {
      int64_t b = rng.UniformRange(0, 520);
      Interval probe(b, b + rng.UniformRange(0, 60));
      std::vector<IntervalTree::PayloadId> expected;
      for (const auto& [iv, id] : entries) {
        if (iv.Intersects(probe)) expected.push_back(id);
      }
      auto actual = tree.FindIntersecting(probe);
      std::sort(expected.begin(), expected.end());
      std::sort(actual.begin(), actual.end());
      EXPECT_EQ(actual, expected);
    }
  }
}

TEST(IntervalTree, VisitorEarlyTermination) {
  IntervalTree tree;
  tree.Build({{Interval(0, 10), 0}, {Interval(5, 15), 1}});
  int count = 0;
  tree.VisitIntersecting(Interval(6, 8), [&count](uint32_t) { ++count; });
  EXPECT_EQ(count, 2);
}

TEST(IntervalTree, RebuildReplacesContent) {
  IntervalTree tree;
  tree.Build({{Interval(0, 10), 0}});
  tree.Build({{Interval(100, 110), 1}});
  EXPECT_TRUE(tree.Stab(5).empty());
  EXPECT_EQ(tree.Stab(105).size(), 1u);
}

}  // namespace
}  // namespace temporal
}  // namespace tecore
