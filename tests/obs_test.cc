// Metrics registry unit tests: handle identity, label canonicalization,
// histogram bucket math and quantile estimation, the exact Prometheus
// text exposition (golden output on a fresh registry), per-label series
// removal, and a multi-thread hammer that the TSan CI job runs to prove
// the sharded cells are race-free.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "obs/access_log.h"
#include "obs/metrics.h"

namespace tecore {
namespace obs {
namespace {

TEST(CounterTest, IncrementAndRead) {
  Counter counter;
  EXPECT_EQ(counter.Value(), 0u);
  counter.Inc();
  counter.Inc(41);
  EXPECT_EQ(counter.Value(), 42u);
}

TEST(GaugeTest, SetAndAdd) {
  Gauge gauge;
  EXPECT_EQ(gauge.Value(), 0);
  gauge.Set(10);
  gauge.Add(-13);
  EXPECT_EQ(gauge.Value(), -3);
}

TEST(RegistryTest, GetterReturnsSameHandleForSameSeries) {
  Registry registry;
  auto a = registry.GetCounter("reqs", {{"endpoint", "solve"}});
  auto b = registry.GetCounter("reqs", {{"endpoint", "solve"}});
  auto other = registry.GetCounter("reqs", {{"endpoint", "graph"}});
  EXPECT_EQ(a.get(), b.get());
  EXPECT_NE(a.get(), other.get());
  a->Inc();
  EXPECT_EQ(b->Value(), 1u);
  EXPECT_EQ(other->Value(), 0u);
}

TEST(RegistryTest, LabelOrderDoesNotSplitSeries) {
  Registry registry;
  auto a = registry.GetGauge("g", {{"a", "1"}, {"b", "2"}});
  auto b = registry.GetGauge("g", {{"b", "2"}, {"a", "1"}});
  EXPECT_EQ(a.get(), b.get());
}

TEST(HistogramTest, InclusiveBucketBoundsAndSum) {
  Histogram hist({10, 100, 1000});
  hist.Observe(5);     // first bucket
  hist.Observe(10);    // still first bucket: bounds are inclusive
  hist.Observe(11);    // second bucket
  hist.Observe(1001);  // +Inf bucket
  const Histogram::Snapshot snap = hist.Snap();
  ASSERT_EQ(snap.counts.size(), 4u);
  EXPECT_EQ(snap.counts[0], 2u);
  EXPECT_EQ(snap.counts[1], 1u);
  EXPECT_EQ(snap.counts[2], 0u);
  EXPECT_EQ(snap.counts[3], 1u);
  EXPECT_EQ(snap.count, 4u);
  EXPECT_EQ(snap.sum, 5u + 10u + 11u + 1001u);
}

TEST(HistogramTest, QuantileEstimates) {
  Histogram hist({10, 100, 1000});
  for (int i = 0; i < 90; ++i) hist.Observe(10);    // first bucket
  for (int i = 0; i < 9; ++i) hist.Observe(100);    // second bucket
  hist.Observe(5000);                               // +Inf bucket
  const Histogram::Snapshot snap = hist.Snap();
  EXPECT_EQ(snap.Quantile(0.0), 0u);  // rank 1, interpolated near 0
  // p50: rank 50 of 90 in [0,10].
  EXPECT_EQ(snap.Quantile(0.5), 5u);
  // p95: rank 95 lands in the (10,100] bucket.
  const uint64_t p95 = snap.Quantile(0.95);
  EXPECT_GT(p95, 10u);
  EXPECT_LE(p95, 100u);
  // p100: the +Inf bucket reports its lower edge.
  EXPECT_EQ(snap.Quantile(1.0), 1000u);
  // Quantiles are monotone in q.
  EXPECT_LE(snap.Quantile(0.5), snap.Quantile(0.9));
  EXPECT_LE(snap.Quantile(0.9), snap.Quantile(0.99));
}

TEST(HistogramTest, EmptyHistogramQuantileIsZero) {
  Histogram hist({10, 100});
  EXPECT_EQ(hist.Snap().Quantile(0.5), 0u);
}

TEST(RegistryTest, PrometheusTextGoldenOutput) {
  Registry registry;
  registry.GetCounter("t_requests", {{"endpoint", "solve"}, {"status", "2xx"}})
      ->Inc(3);
  registry.GetGauge("t_gauge")->Set(-5);
  auto hist = registry.GetHistogram("t_lat", {{"stage", "x"}}, {10, 100});
  hist->Observe(5);
  hist->Observe(50);
  hist->Observe(500);
  const std::string expected =
      "# TYPE t_gauge gauge\n"
      "t_gauge -5\n"
      "# TYPE t_lat histogram\n"
      "t_lat_bucket{stage=\"x\",le=\"10\"} 1\n"
      "t_lat_bucket{stage=\"x\",le=\"100\"} 2\n"
      "t_lat_bucket{stage=\"x\",le=\"+Inf\"} 3\n"
      "t_lat_sum{stage=\"x\"} 555\n"
      "t_lat_count{stage=\"x\"} 3\n"
      "# TYPE t_requests counter\n"
      "t_requests{endpoint=\"solve\",status=\"2xx\"} 3\n";
  EXPECT_EQ(registry.RenderPrometheusText(), expected);
  // A second render is byte-identical: ordering is deterministic.
  EXPECT_EQ(registry.RenderPrometheusText(), expected);
}

TEST(RegistryTest, RemoveLabeledDropsExactMatchesOnly) {
  Registry registry;
  auto doomed = registry.GetGauge("kb_facts", {{"kb", "a"}});
  registry.GetGauge("kb_facts", {{"kb", "aa"}})->Set(7);
  doomed->Set(3);
  registry.RemoveLabeled("kb_facts", "kb", "a");
  const std::string text = registry.RenderPrometheusText();
  EXPECT_EQ(text.find("kb=\"a\"}"), std::string::npos);
  EXPECT_NE(text.find("kb=\"aa\"} 7"), std::string::npos);
  // The held handle stays valid after removal; it is just unscraped.
  doomed->Set(4);
  EXPECT_EQ(doomed->Value(), 4);
  // Re-registering the removed series starts a fresh one.
  EXPECT_EQ(registry.GetGauge("kb_facts", {{"kb", "a"}})->Value(), 0);
}

TEST(RegistryTest, RemovingLastSeriesDropsFamily) {
  Registry registry;
  registry.GetGauge("lonely", {{"kb", "x"}})->Set(1);
  registry.RemoveLabeled("lonely", "kb", "x");
  EXPECT_EQ(registry.RenderPrometheusText(), "");
}

TEST(ScopedTimerTest, ObservesOncePerScope) {
  Registry registry;
  auto hist = registry.GetHistogram("timed", {}, {1000000});
  {
    ScopedTimer timer(hist);
  }
  EXPECT_EQ(hist->Snap().count, 1u);
}

TEST(StageHistogramTest, SharesTheDefaultRegistrySeries) {
  auto a = StageHistogram("obs_test_stage");
  auto b = StageHistogram("obs_test_stage");
  EXPECT_EQ(a.get(), b.get());
  a->Observe(123);
  const std::string text = Registry::Default()->RenderPrometheusText();
  EXPECT_NE(
      text.find(
          "tecore_stage_duration_micros_count{stage=\"obs_test_stage\"}"),
      std::string::npos);
}

// Run under TSan in CI: 8 threads hammering one counter, one gauge and
// one histogram through shared handles must be race-free and lose no
// increments.
TEST(RegistryTest, ConcurrentWritersAreExactAndRaceFree) {
  Registry registry;
  auto counter = registry.GetCounter("hammer_total");
  auto gauge = registry.GetGauge("hammer_gauge");
  auto hist = registry.GetHistogram("hammer_lat", {}, {10, 100, 1000});
  constexpr int kThreads = 8;
  constexpr int kIters = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kIters; ++i) {
        counter->Inc();
        gauge->Add(1);
        hist->Observe(static_cast<uint64_t>((t * kIters + i) % 2000));
        if (i % 4096 == 0) {
          // Concurrent scrapes while writers are live.
          registry.RenderPrometheusText();
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(counter->Value(), static_cast<uint64_t>(kThreads) * kIters);
  EXPECT_EQ(gauge->Value(), static_cast<int64_t>(kThreads) * kIters);
  const Histogram::Snapshot snap = hist->Snap();
  EXPECT_EQ(snap.count, static_cast<uint64_t>(kThreads) * kIters);
  uint64_t bucket_total = 0;
  for (uint64_t c : snap.counts) bucket_total += c;
  EXPECT_EQ(bucket_total, snap.count);
}

TEST(AccessLogTest, GeneratedRequestIdsAreUnique) {
  const std::string a = GenerateRequestId();
  const std::string b = GenerateRequestId();
  EXPECT_NE(a, b);
  EXPECT_EQ(a.rfind("r-", 0), 0u);
}

TEST(AccessLogTest, WritesOneSanitizedLinePerEntry) {
  const std::string path = ::testing::TempDir() + "/obs_access.log";
  std::remove(path.c_str());
  auto log = AccessLog::Open(path);
  ASSERT_TRUE(log.ok()) << log.status().ToString();
  AccessLog::Entry entry;
  entry.method = "GET";
  entry.path = "/v1/kb/default/graph?x=1 2";  // space must be masked
  entry.status = 200;
  entry.response_bytes = 17;
  entry.duration_micros = 250;
  entry.request_id = "req-1";
  log.value()->Write(entry);
  FILE* file = std::fopen(path.c_str(), "r");
  ASSERT_NE(file, nullptr);
  char buf[512] = {0};
  ASSERT_NE(std::fgets(buf, sizeof(buf), file), nullptr);
  std::fclose(file);
  const std::string line = buf;
  EXPECT_NE(line.find("method=GET"), std::string::npos);
  EXPECT_NE(line.find("path=/v1/kb/default/graph?x=1_2"), std::string::npos);
  EXPECT_NE(line.find("status=200"), std::string::npos);
  EXPECT_NE(line.find("bytes=17"), std::string::npos);
  EXPECT_NE(line.find("micros=250"), std::string::npos);
  EXPECT_NE(line.find("request_id=req-1"), std::string::npos);
  // ISO-8601 UTC timestamp leads the line.
  EXPECT_EQ(line.find("20"), 0u);
  EXPECT_NE(line.find("T"), std::string::npos);
  EXPECT_NE(line.find("Z "), std::string::npos);
}

TEST(AccessLogTest, OpenFailsForUnwritablePath) {
  auto log = AccessLog::Open("/nonexistent-dir-obs/x.log");
  EXPECT_FALSE(log.ok());
}

}  // namespace
}  // namespace obs
}  // namespace tecore
