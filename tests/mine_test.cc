#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/conflict.h"
#include "core/session.h"
#include "datagen/generators.h"
#include "mine/miner.h"
#include "rules/ast.h"
#include "rules/parser.h"
#include "temporal/interval.h"

namespace tecore {
namespace mine {
namespace {

/// The default noisy FootballDB workload the miner is tuned for.
rdf::TemporalGraph NoisyFootball(size_t players) {
  datagen::FootballDbOptions gen;
  gen.num_players = players;
  return std::move(datagen::GenerateFootballDb(gen).graph);
}

const MinedRule* FindByName(const MiningReport& report,
                            const std::string& name) {
  for (const MinedRule& mined : report.rules) {
    if (mined.rule.name == name) return &mined;
  }
  return nullptr;
}

TEST(Miner, RecoversPlantedDisjointnessWithTopSupport) {
  rdf::TemporalGraph graph = NoisyFootball(800);
  const MiningReport report = Miner().Mine(graph);
  ASSERT_FALSE(report.rules.empty());
  // The generator plants parallel-career noise on playsFor; the
  // disjointness pattern over it has the most instances of any mined
  // pattern, so it must lead the ranking.
  EXPECT_EQ(report.rules.front().rule.name, "disjoint_playsFor");
  EXPECT_EQ(report.rules.front().kind, PatternKind::kDisjointness);
  EXPECT_GT(report.rules.front().violations, 0u);  // noisy: soft rule
  EXPECT_FALSE(report.rules.front().rule.hard);
  EXPECT_GT(report.rules.front().rule.weight, 0.0);
}

TEST(Miner, FindsBirthPrecedesPlayingOnCleanData) {
  datagen::FootballDbOptions gen;
  gen.num_players = 400;
  gen.noise_rate = 0.0;
  rdf::TemporalGraph graph =
      std::move(datagen::GenerateFootballDb(gen).graph);
  const MiningReport report = Miner().Mine(graph);
  const MinedRule* precede =
      FindByName(report, "precede_birthDate_playsFor");
  ASSERT_NE(precede, nullptr);
  EXPECT_EQ(precede->kind, PatternKind::kPrecedence);
  EXPECT_EQ(precede->violations, 0u);
  EXPECT_TRUE(precede->rule.hard);  // violation-free evidence -> hard
  // The reverse direction must not survive.
  EXPECT_EQ(FindByName(report, "precede_playsFor_birthDate"), nullptr);
}

TEST(Miner, OutputBytesIdenticalAtEveryThreadCount) {
  rdf::TemporalGraph graph = NoisyFootball(600);
  MiningOptions options;
  const MiningReport base = Miner(options).Mine(graph);
  const std::string canonical = WriteMinedRulesText(base, options);
  EXPECT_FALSE(canonical.empty());
  for (int threads : {2, 4, 0}) {
    MiningOptions threaded = options;
    threaded.num_threads = threads;
    const MiningReport again = Miner(threaded).Mine(graph);
    EXPECT_EQ(WriteMinedRulesText(again, threaded), canonical)
        << "mined document differs at num_threads=" << threads;
  }
}

TEST(Miner, MinedDocumentRoundTripsThroughTheParser) {
  rdf::TemporalGraph graph = NoisyFootball(600);
  MiningOptions options;
  const MiningReport report = Miner(options).Mine(graph);
  ASSERT_FALSE(report.rules.empty());
  const std::string text = WriteMinedRulesText(report, options);

  // Emit -> parse: the '#' evidence comments are skipped, the rules are
  // reproduced exactly.
  auto parsed = rules::ParseRules(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const rules::RuleSet expected = report.ToRuleSet();
  ASSERT_EQ(parsed->Size(), expected.Size());
  for (size_t i = 0; i < expected.Size(); ++i) {
    EXPECT_EQ(parsed->rules[i].ToString(), expected.rules[i].ToString());
  }

  // Parse -> re-emit: bit-identical canonical rule text.
  EXPECT_EQ(rules::WriteRulesText(*parsed),
            rules::WriteRulesText(expected));
  // And the full mined document is itself a fixed point under
  // parse + re-mine of nothing: re-rendering the same report must be
  // byte-identical (no timestamps or run-dependent state).
  EXPECT_EQ(WriteMinedRulesText(report, options), text);
}

TEST(Miner, MinedRulesDetectTheInjectedConflicts) {
  rdf::TemporalGraph graph = NoisyFootball(400);
  const MiningReport report = Miner().Mine(graph);
  ASSERT_FALSE(report.rules.empty());
  const rules::RuleSet mined = report.ToRuleSet();
  core::ConflictDetector detector(&graph, mined);
  auto conflicts = detector.Detect();
  ASSERT_TRUE(conflicts.ok()) << conflicts.status().ToString();
  EXPECT_GT(conflicts->NumConflicts(), 0u);
}

TEST(Miner, MinedRulesSolveEndToEnd) {
  core::Session session;
  session.SetGraph(NoisyFootball(120));
  const MiningReport report = Miner().Mine(session.graph());
  ASSERT_FALSE(report.rules.empty());
  auto added = session.AddRulesText(
      rules::WriteRulesText(report.ToRuleSet()));
  ASSERT_TRUE(added.ok()) << added.status().ToString();
  auto result = session.Resolve({});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->feasible);
  // Resolution dropped at least one fact: the mined constraints bind.
  EXPECT_LT(result->consistent_graph.NumLiveFacts(),
            session.graph().NumLiveFacts());
}

TEST(Miner, SkipsPredicatesTheRuleLanguageCannotName) {
  rdf::TemporalGraph graph;
  // "p2" parses as a rule variable, "a|b" as garbage: both would produce
  // rules that do not round-trip, so the miner must skip them (and count
  // the skips), even with plenty of disjoint evidence.
  for (const char* pred : {"p2", "a|b"}) {
    for (int s = 0; s < 30; ++s) {
      for (int i = 0; i < 2; ++i) {
        ASSERT_TRUE(graph
                        .AddQuad("s" + std::to_string(s), pred,
                                 "o" + std::to_string(i),
                                 temporal::Interval(i * 10, i * 10 + 3),
                                 0.9)
                        .ok());
      }
    }
  }
  MiningOptions options;
  options.min_support = 2;
  const MiningReport report = Miner(options).Mine(graph);
  EXPECT_TRUE(report.rules.empty());
  EXPECT_EQ(report.predicates_profiled, 0u);
  EXPECT_EQ(report.predicates_skipped, 2u);
}

TEST(Miner, IsSafeRulePredicate) {
  EXPECT_TRUE(IsSafeRulePredicate("playsFor"));
  EXPECT_TRUE(IsSafeRulePredicate("birthDate"));
  EXPECT_TRUE(IsSafeRulePredicate("P69"));  // upper first char: constant
  EXPECT_FALSE(IsSafeRulePredicate("p2"));  // lower + digits: a variable
  EXPECT_FALSE(IsSafeRulePredicate("x"));
  EXPECT_FALSE(IsSafeRulePredicate("before"));  // reserved Allen name
  EXPECT_FALSE(IsSafeRulePredicate("quad"));
  EXPECT_FALSE(IsSafeRulePredicate("w"));
  EXPECT_FALSE(IsSafeRulePredicate(""));
  EXPECT_FALSE(IsSafeRulePredicate("a|b"));
  EXPECT_FALSE(IsSafeRulePredicate("has space"));
}

TEST(Miner, ThresholdsFilterCandidates) {
  rdf::TemporalGraph graph = NoisyFootball(300);
  MiningOptions strict;
  strict.min_support = 1000000;  // nothing qualifies
  EXPECT_TRUE(Miner(strict).Mine(graph).rules.empty());

  MiningOptions capped;
  capped.max_patterns = 1;
  const MiningReport top_only = Miner(capped).Mine(graph);
  ASSERT_EQ(top_only.rules.size(), 1u);
  EXPECT_GT(top_only.patterns_dropped, 0u);
  // The cap keeps the strongest candidate, same leader as the full run.
  EXPECT_EQ(top_only.rules.front().rule.name,
            Miner().Mine(graph).rules.front().rule.name);
}

TEST(Miner, EmptyGraphMinesNothing) {
  rdf::TemporalGraph graph;
  const MiningReport report = Miner().Mine(graph);
  EXPECT_TRUE(report.rules.empty());
  EXPECT_EQ(report.predicates_profiled, 0u);
  // The document is still well-formed (header only) and parses to an
  // empty rule set.
  auto parsed = rules::ParseRules(WriteMinedRulesText(report, {}));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->Size(), 0u);
}

TEST(WriteRulesText, RoundTripsBitExactly) {
  const char* source = R"(
    c2: quad(x, playsFor, y, t) & quad(x, playsFor, z, t') & y != z
        -> disjoint(t, t') .
    soft: quad(x, coach, y, t) -> quad(x, worksFor, y, t) w = 2.5 .
  )";
  auto parsed = rules::ParseRules(source);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const std::string text = rules::WriteRulesText(*parsed);
  auto reparsed = rules::ParseRules(text);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  EXPECT_EQ(rules::WriteRulesText(*reparsed), text);
}

}  // namespace
}  // namespace mine
}  // namespace tecore
