#include <gtest/gtest.h>

#include "temporal/allen_network.h"

namespace tecore {
namespace temporal {
namespace {

TEST(AllenNetwork, TrivialNetworkIsConsistent) {
  AllenNetwork net(3);
  EXPECT_TRUE(net.Propagate());
  EXPECT_TRUE(net.PossiblyConsistent());
}

TEST(AllenNetwork, TransitivityOfBefore) {
  AllenNetwork net(3);
  ASSERT_TRUE(net.Constrain(0, 1, AllenSet(AllenRelation::kBefore)).ok());
  ASSERT_TRUE(net.Constrain(1, 2, AllenSet(AllenRelation::kBefore)).ok());
  ASSERT_TRUE(net.Propagate());
  // 0 before 2 is forced.
  EXPECT_EQ(net.RelationsBetween(0, 2), AllenSet(AllenRelation::kBefore));
  // And the converse edge mirrors it.
  EXPECT_EQ(net.RelationsBetween(2, 0), AllenSet(AllenRelation::kAfter));
}

TEST(AllenNetwork, DetectsCyclicInconsistency) {
  // t0 < t1 < t2 < t0 is impossible.
  AllenNetwork net(3);
  ASSERT_TRUE(net.Constrain(0, 1, AllenSet(AllenRelation::kBefore)).ok());
  ASSERT_TRUE(net.Constrain(1, 2, AllenSet(AllenRelation::kBefore)).ok());
  ASSERT_TRUE(net.Constrain(2, 0, AllenSet(AllenRelation::kBefore)).ok());
  EXPECT_FALSE(net.Propagate());
  EXPECT_FALSE(net.PossiblyConsistent());
}

TEST(AllenNetwork, DuringChainRefinesEnclosure) {
  AllenNetwork net(3);
  ASSERT_TRUE(net.Constrain(0, 1, AllenSet(AllenRelation::kDuring)).ok());
  ASSERT_TRUE(net.Constrain(1, 2, AllenSet(AllenRelation::kDuring)).ok());
  ASSERT_TRUE(net.Propagate());
  EXPECT_EQ(net.RelationsBetween(0, 2), AllenSet(AllenRelation::kDuring));
}

TEST(AllenNetwork, ConstraintIntersectionNarrows) {
  AllenNetwork net(2);
  AllenSet either;
  either.Add(AllenRelation::kBefore).Add(AllenRelation::kMeets);
  ASSERT_TRUE(net.Constrain(0, 1, either).ok());
  AllenSet other;
  other.Add(AllenRelation::kMeets).Add(AllenRelation::kOverlaps);
  ASSERT_TRUE(net.Constrain(0, 1, other).ok());
  EXPECT_EQ(net.RelationsBetween(0, 1), AllenSet(AllenRelation::kMeets));
}

TEST(AllenNetwork, EmptyEdgeConstraintIsInconsistent) {
  AllenNetwork net(2);
  ASSERT_TRUE(net.Constrain(0, 1, AllenSet(AllenRelation::kBefore)).ok());
  ASSERT_TRUE(net.Constrain(0, 1, AllenSet(AllenRelation::kAfter)).ok());
  EXPECT_FALSE(net.PossiblyConsistent());
  EXPECT_FALSE(net.Propagate());
}

TEST(AllenNetwork, RejectsOutOfRangeAndBadSelfEdge) {
  AllenNetwork net(2);
  EXPECT_EQ(net.Constrain(0, 5, AllenSet::All()).code(),
            StatusCode::kOutOfRange);
  EXPECT_EQ(net.Constrain(0, 0, AllenSet(AllenRelation::kBefore)).code(),
            StatusCode::kInvalidArgument);
  EXPECT_TRUE(net.Constrain(0, 0, AllenSet::All()).ok());
}

TEST(AllenNetwork, PaperConstraintPatternIsSatisfiable) {
  // birthDate before deathDate; career during life; all jointly fine.
  AllenNetwork net(3);  // 0=life, 1=career, 2=death-point
  ASSERT_TRUE(net.Constrain(1, 0, AllenSet(AllenRelation::kDuring)).ok());
  ASSERT_TRUE(net.Constrain(0, 2, AllenSet(AllenRelation::kMeets)).ok());
  ASSERT_TRUE(net.Propagate());
  // career must be before or at least not after the death point.
  EXPECT_FALSE(net.RelationsBetween(1, 2).Contains(AllenRelation::kAfter));
}

TEST(AllenNetwork, ToStringShowsRefinedEdges) {
  AllenNetwork net(2);
  ASSERT_TRUE(net.Constrain(0, 1, AllenSet(AllenRelation::kBefore)).ok());
  std::string dump = net.ToString();
  EXPECT_NE(dump.find("before"), std::string::npos);
}

}  // namespace
}  // namespace temporal
}  // namespace tecore
