#include <gtest/gtest.h>

#include "temporal/interval_set.h"
#include "util/random.h"

namespace tecore {
namespace temporal {
namespace {

TEST(IntervalSet, NormalizesOverlapsAndAdjacency) {
  IntervalSet s({{1, 3}, {2, 5}, {6, 8}, {12, 14}});
  // [1,3]+[2,5] merge; [6,8] is adjacent to [2,5] in discrete time.
  ASSERT_EQ(s.Size(), 2u);
  EXPECT_EQ(s.intervals()[0], Interval(1, 8));
  EXPECT_EQ(s.intervals()[1], Interval(12, 14));
}

TEST(IntervalSet, AddKeepsNormalForm) {
  IntervalSet s;
  s.Add({10, 12});
  s.Add({1, 2});
  s.Add({4, 8});
  s.Add({3, 3});  // bridges [1,2] and [4,8]
  ASSERT_EQ(s.Size(), 2u);
  EXPECT_EQ(s.intervals()[0], Interval(1, 8));
}

TEST(IntervalSet, UnionIntersectSubtract) {
  IntervalSet a({{1, 5}, {10, 15}});
  IntervalSet b({{4, 11}});
  IntervalSet u = a.Union(b);
  ASSERT_EQ(u.Size(), 1u);
  EXPECT_EQ(u.intervals()[0], Interval(1, 15));

  IntervalSet i = a.Intersect(b);
  ASSERT_EQ(i.Size(), 2u);
  EXPECT_EQ(i.intervals()[0], Interval(4, 5));
  EXPECT_EQ(i.intervals()[1], Interval(10, 11));

  IntervalSet d = a.Subtract(b);
  ASSERT_EQ(d.Size(), 2u);
  EXPECT_EQ(d.intervals()[0], Interval(1, 3));
  EXPECT_EQ(d.intervals()[1], Interval(12, 15));
}

TEST(IntervalSet, SubtractSplitsInTheMiddle) {
  IntervalSet a({{1, 10}});
  IntervalSet b({{4, 6}});
  IntervalSet d = a.Subtract(b);
  ASSERT_EQ(d.Size(), 2u);
  EXPECT_EQ(d.intervals()[0], Interval(1, 3));
  EXPECT_EQ(d.intervals()[1], Interval(7, 10));
}

TEST(IntervalSet, MembershipQueries) {
  IntervalSet s({{1, 5}, {10, 15}});
  EXPECT_TRUE(s.Contains(1));
  EXPECT_TRUE(s.Contains(5));
  EXPECT_FALSE(s.Contains(7));
  EXPECT_TRUE(s.Covers(Interval(11, 14)));
  EXPECT_FALSE(s.Covers(Interval(4, 11)));
  EXPECT_TRUE(s.Intersects(Interval(5, 7)));
  EXPECT_FALSE(s.Intersects(Interval(6, 9)));
  EXPECT_EQ(s.TotalDuration(), 5 + 6);
}

TEST(IntervalSet, EmptySetBehaviour) {
  IntervalSet s;
  EXPECT_TRUE(s.Empty());
  EXPECT_FALSE(s.Contains(0));
  EXPECT_FALSE(s.Intersects(Interval(0, 100)));
  EXPECT_EQ(s.TotalDuration(), 0);
  EXPECT_EQ(s.ToString(), "{}");
  EXPECT_EQ(s.Union(s), s);
  EXPECT_EQ(s.Intersect(s), s);
}

TEST(IntervalSet, PropertyAgainstPointwiseModel) {
  // Property test: set operations agree with a bitset model over a small
  // universe, across random inputs.
  Rng rng(99);
  for (int trial = 0; trial < 200; ++trial) {
    auto random_set = [&rng]() {
      std::vector<Interval> ivs;
      const int n = 1 + static_cast<int>(rng.Uniform(4));
      for (int i = 0; i < n; ++i) {
        int64_t b = rng.UniformRange(0, 40);
        ivs.emplace_back(b, b + rng.UniformRange(0, 8));
      }
      return IntervalSet(std::move(ivs));
    };
    IntervalSet a = random_set(), b = random_set();
    auto model = [](const IntervalSet& s, TimePoint t) {
      return s.Contains(t);
    };
    IntervalSet u = a.Union(b), i = a.Intersect(b), d = a.Subtract(b);
    for (TimePoint t = -2; t <= 52; ++t) {
      EXPECT_EQ(model(u, t), model(a, t) || model(b, t)) << "t=" << t;
      EXPECT_EQ(model(i, t), model(a, t) && model(b, t)) << "t=" << t;
      EXPECT_EQ(model(d, t), model(a, t) && !model(b, t)) << "t=" << t;
    }
    // Normal form: members sorted, disjoint, non-adjacent.
    for (size_t k = 1; k < u.Size(); ++k) {
      EXPECT_GT(u.intervals()[k].begin(), u.intervals()[k - 1].end() + 1);
    }
  }
}

}  // namespace
}  // namespace temporal
}  // namespace tecore
