#include <gtest/gtest.h>

#include "datagen/generators.h"
#include "kb/statistics.h"

namespace tecore {
namespace datagen {
namespace {

TEST(RunningExample, MatchesFigure1) {
  rdf::TemporalGraph graph = RunningExampleGraph(false);
  ASSERT_EQ(graph.NumFacts(), 5u);
  EXPECT_EQ(graph.FactToString(0),
            "(CR, coach, Chelsea, [2000,2004]) 0.90");
  EXPECT_EQ(graph.FactToString(4), "(CR, coach, Napoli, [2001,2003]) 0.60");
  rdf::TemporalGraph with_locations = RunningExampleGraph(true);
  EXPECT_EQ(with_locations.NumFacts(), 9u);
}

TEST(FootballDb, ReproducesPaperCardinalities) {
  FootballDbOptions options;  // defaults aim at the paper's >13K / >6K
  GeneratedKg kg = GenerateFootballDb(options);
  auto counts = kg.graph.PredicateCounts();
  size_t plays_for = 0, birth_date = 0;
  for (const auto& [pred, count] : counts) {
    const std::string name = kg.graph.dict().Lookup(pred).lexical();
    if (name == "playsFor") plays_for = count;
    if (name == "birthDate") birth_date = count;
  }
  EXPECT_GT(plays_for, 13'000u);
  EXPECT_GT(birth_date, 6'000u);
  EXPECT_EQ(kg.num_clean + kg.num_noise, kg.graph.NumFacts());
  EXPECT_EQ(kg.is_noise.size(), kg.graph.NumFacts());
}

TEST(FootballDb, NoiseRateIsRespected) {
  FootballDbOptions options;
  options.num_players = 2000;
  options.noise_rate = 1.0;  // "as many erroneous facts as correct ones"
  GeneratedKg kg = GenerateFootballDb(options);
  // noise kinds fire with rates 1.0 / 0.5 / 0.25 per player against ~3
  // clean facts per player; expect a substantial noise share.
  double ratio = static_cast<double>(kg.num_noise) /
                 static_cast<double>(kg.num_clean);
  EXPECT_GT(ratio, 0.3);
  EXPECT_LT(ratio, 1.0);

  FootballDbOptions clean_options;
  clean_options.num_players = 500;
  clean_options.noise_rate = 0.0;
  GeneratedKg clean = GenerateFootballDb(clean_options);
  EXPECT_EQ(clean.num_noise, 0u);
}

TEST(FootballDb, DeterministicForSeed) {
  FootballDbOptions options;
  options.num_players = 200;
  GeneratedKg a = GenerateFootballDb(options);
  GeneratedKg b = GenerateFootballDb(options);
  ASSERT_EQ(a.graph.NumFacts(), b.graph.NumFacts());
  for (rdf::FactId id = 0; id < a.graph.NumFacts(); ++id) {
    EXPECT_EQ(a.graph.FactToString(id), b.graph.FactToString(id));
  }
  options.seed = 999;
  GeneratedKg c = GenerateFootballDb(options);
  EXPECT_NE(a.graph.NumFacts(), c.graph.NumFacts());
}

TEST(FootballDb, CleanFactsAreTemporallyConsistent) {
  FootballDbOptions options;
  options.num_players = 300;
  options.noise_rate = 0.0;
  GeneratedKg kg = GenerateFootballDb(options);
  // Careers never overlap for a clean player: group by subject.
  const auto& dict = kg.graph.dict();
  auto plays_for = dict.FindIri("playsFor");
  ASSERT_TRUE(plays_for.ok());
  for (const auto& fact : kg.graph.facts()) {
    if (fact.predicate != *plays_for) continue;
    for (rdf::FactId other_id :
         kg.graph.FactsWithSubjectPredicate(fact.subject, *plays_for)) {
      const auto& other = kg.graph.fact(other_id);
      if (&other == &fact) continue;
      if (other.object != fact.object) {
        EXPECT_FALSE(fact.interval.Intersects(other.interval))
            << kg.graph.FactToString(fact) << " vs "
            << kg.graph.FactToString(other);
      }
    }
  }
}

TEST(Wikidata, HitsTargetSizeAndMix) {
  WikidataOptions options;
  options.target_facts = 20'000;
  GeneratedKg kg = GenerateWikidata(options);
  EXPECT_NEAR(static_cast<double>(kg.graph.NumFacts()), 20'000, 2.0);
  kb::GraphStatistics stats = kb::ComputeStatistics(kg.graph);
  // playsFor dominates, as in the paper's extract.
  EXPECT_EQ(stats.predicate_counts[0].first, "playsFor");
  EXPECT_GT(stats.predicate_counts[0].second, kg.graph.NumFacts() / 2);
  // All five relations are present.
  EXPECT_EQ(stats.num_distinct_predicates, 5u);
}

TEST(Wikidata, NoiseShareScalesWithRate) {
  WikidataOptions low;
  low.target_facts = 30'000;
  low.noise_rate = 0.01;
  WikidataOptions high = low;
  high.noise_rate = 0.10;
  GeneratedKg a = GenerateWikidata(low);
  GeneratedKg b = GenerateWikidata(high);
  EXPECT_LT(a.num_noise * 5, b.num_noise);
}

TEST(Wikidata, DefaultsAimAtFigure8) {
  WikidataOptions options;
  EXPECT_EQ(options.target_facts, 243'157u);
}

}  // namespace
}  // namespace datagen
}  // namespace tecore
