// Differential proof of the copy-on-write snapshot publish: identical
// randomized edit scripts — inserts, retractions, rule changes and
// interleaved solves — drive api::Engine instances at 1/2/4 threads (the
// COW world) and a deep-clone baseline world (rdf::TemporalGraph::DeepCopy,
// the pre-COW semantics). After every step the two worlds must agree
// bit-for-bit: canonical ground network bytes, objectives, kept/removed
// sets, statistics, conflict sets and the serialized graph. Retained
// snapshots must stay byte-stable while the writer moves on, and an edit
// of k facts must copy O(k) chunks, never O(graph).

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "api/engine.h"
#include "core/conflict.h"
#include "core/resolver.h"
#include "datagen/generators.h"
#include "ground/ground_network.h"
#include "ground/grounder.h"
#include "kb/statistics.h"
#include "rdf/graph.h"
#include "rdf/io.h"
#include "rules/library.h"
#include "util/random.h"
#include "util/string_util.h"

namespace tecore {
namespace {

/// Renders a network dictionary-independently: atoms by content (with
/// evidence flag and bit-exact prior), clauses by literal structure.
std::string RenderNetwork(const ground::GroundNetwork& net,
                          const rdf::Dictionary& dict) {
  std::string out;
  for (ground::AtomId id = 0; id < net.NumAtoms(); ++id) {
    const ground::GroundAtom& atom = net.atom(id);
    out += net.AtomToString(id, dict);
    out += StringPrintf(" prior=%s evid=%d\n",
                        FormatDoubleExact(atom.prior_weight).c_str(),
                        atom.is_evidence ? 1 : 0);
  }
  for (const ground::GroundClause& clause : net.clauses()) {
    out += clause.hard ? "hard" : "soft";
    out += StringPrintf(" w=%s rule=%d lits=",
                        FormatDoubleExact(clause.weight).c_str(),
                        clause.rule_index);
    for (int32_t lit : clause.literals) out += StringPrintf("%d,", lit);
    out += '\n';
  }
  return out;
}

/// Maps fact ids of a graph-with-tombstones to live ranks, so flip sets
/// compare against the compacted scratch world.
std::vector<rdf::FactId> ToLiveRanks(const rdf::TemporalGraph& graph,
                                     const std::vector<rdf::FactId>& ids) {
  std::vector<rdf::FactId> out;
  out.reserve(ids.size());
  for (rdf::FactId id : ids) {
    out.push_back(static_cast<rdf::FactId>(graph.LiveRank(id)));
  }
  return out;
}

/// Every statistics field rendered bit-exactly (doubles via
/// FormatDoubleExact), so two reports compare as one string.
std::string StatsToString(const kb::GraphStatistics& stats) {
  std::string out = StringPrintf(
      "facts=%zu subj=%zu pred=%zu obj=%zu mean_conf=%s min_t=%lld "
      "max_t=%lld mean_dur=%s\n",
      stats.num_facts, stats.num_distinct_subjects,
      stats.num_distinct_predicates, stats.num_distinct_objects,
      FormatDoubleExact(stats.mean_confidence).c_str(),
      static_cast<long long>(stats.min_time),
      static_cast<long long>(stats.max_time),
      FormatDoubleExact(stats.mean_interval_duration).c_str());
  for (const auto& entry : stats.predicate_counts) {
    out += StringPrintf("%s=%zu\n", entry.first.c_str(), entry.second);
  }
  for (size_t bin : stats.confidence_histogram) {
    out += StringPrintf("%zu,", bin);
  }
  out += '\n';
  return out;
}

/// Conflict sets rendered content-wise (fact ids differ between the COW
/// world and the compact baseline) and order-normalized.
std::string ConflictsToString(const core::ConflictReport& report,
                              const rdf::TemporalGraph& graph) {
  std::vector<std::string> conflicts;
  for (const core::Conflict& conflict : report.conflicts) {
    std::vector<std::string> facts;
    for (rdf::FactId id : conflict.facts) {
      facts.push_back(graph.FactToString(id));
    }
    std::sort(facts.begin(), facts.end());
    std::string line = StringPrintf("rule=%d:", conflict.rule_index);
    for (const std::string& fact : facts) line += " " + fact;
    conflicts.push_back(std::move(line));
  }
  std::sort(conflicts.begin(), conflicts.end());
  std::vector<std::string> in_conflict;
  for (rdf::FactId id : report.conflicting_facts) {
    in_conflict.push_back(graph.FactToString(id));
  }
  std::sort(in_conflict.begin(), in_conflict.end());
  std::string out = StringPrintf("input=%zu\n", report.num_input_facts);
  for (const std::string& line : conflicts) out += line + "\n";
  out += "facts:";
  for (const std::string& fact : in_conflict) out += " " + fact;
  out += "\nper_rule:";
  for (size_t count : report.per_rule_counts) {
    out += StringPrintf("%zu,", count);
  }
  out += '\n';
  return out;
}

/// From-scratch reference on the edited KB (compacted copy, so tombstones
/// cannot leak into the reference path).
core::ResolveResult ScratchResolve(const rdf::TemporalGraph& graph,
                                   const rules::RuleSet& rules,
                                   const core::ResolveOptions& options) {
  rdf::TemporalGraph compact = graph.CompactLive();
  core::Resolver resolver(&compact, rules, options);
  auto result = resolver.Run();
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return std::move(*result);
}

/// The from-scratch canonical network on the edited KB, rendered.
std::string ScratchNetworkRendering(const rdf::TemporalGraph& graph,
                                    const rules::RuleSet& rules,
                                    const ground::GroundingOptions& options) {
  rdf::TemporalGraph compact = graph.CompactLive();
  ground::GroundingOptions grounding = options;
  ground::Grounder grounder(&compact, rules, grounding);
  auto result = grounder.Run();
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return RenderNetwork(result->network, compact.dict());
}

void ExpectInvariantsOk(const rdf::TemporalGraph& graph) {
  Status invariants = graph.CheckInvariants();
  EXPECT_TRUE(invariants.ok()) << invariants.ToString();
}

TEST(SnapshotCowDifferential, RandomizedScriptsMatchDeepCloneBaseline) {
  // Three engines (the COW world) at 1/2/4 threads consume identical edit
  // scripts; a baseline rdf::TemporalGraph applies the same edits and is
  // DeepCopy'd at every step (the deep-clone world). All four must agree
  // bit-for-bit after every step.
  datagen::FootballDbOptions gen;
  gen.num_players = 40;
  gen.num_teams = 8;
  datagen::GeneratedKg kg = datagen::GenerateFootballDb(gen);
  const std::string base_text = rdf::WriteGraphText(kg.graph);

  auto constraints = rules::FootballConstraints();
  ASSERT_TRUE(constraints.ok());
  auto inference = rules::FootballInferenceRules();
  ASSERT_TRUE(inference.ok());

  struct Track {
    std::unique_ptr<api::Engine> engine;
    core::ResolveOptions options;
    std::shared_ptr<const api::Snapshot> prev_snapshot;
    /// Serialized graph bytes captured the moment each version published.
    std::map<uint64_t, std::string> bytes_at_publish;
  };
  std::vector<Track> tracks;
  for (int threads : {1, 2, 4}) {
    Track track;
    api::Engine::Options engine_options;
    engine_options.retain_versions = 4;
    track.engine = std::make_unique<api::Engine>(engine_options);
    track.options.num_threads = threads;
    track.options.ground_threads = threads;
    ASSERT_TRUE(track.engine->LoadGraphText(base_text).ok());
    ASSERT_TRUE(track.engine->AddRules(*constraints).ok());
    tracks.push_back(std::move(track));
  }

  // The deep-clone baseline world.
  auto parsed = rdf::ParseGraphText(base_text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  rdf::TemporalGraph baseline = std::move(*parsed);
  rules::RuleSet baseline_rules = *constraints;

  // Live fact lines (the ".tq" body without " .") with their baseline fact
  // ids — the pool retraction ops draw from.
  std::vector<std::pair<std::string, rdf::FactId>> live_lines;
  for (rdf::FactId id = 0; id < baseline.NumFacts(); ++id) {
    live_lines.emplace_back(rdf::WriteFactText(baseline, baseline.fact(id)),
                            id);
  }

  Rng rng(20260808);
  uint64_t serial = 0;
  for (int step = 0; step < 5; ++step) {
    SCOPED_TRACE(step);
    if (step == 2) {
      // Rule change mid-script: inference rules join the constraint set.
      for (Track& track : tracks) {
        ASSERT_TRUE(track.engine->AddRules(*inference).ok());
      }
      baseline_rules.Merge(*inference);
    }

    // Build one textual edit batch, applied verbatim to every world.
    std::string script;
    std::vector<std::string> insert_lines;
    const size_t num_inserts = 1 + rng.Uniform(3);
    for (size_t i = 0; i < num_inserts; ++i) {
      const int64_t begin = 1990 + static_cast<int64_t>(rng.Uniform(25));
      // The serial in the object makes every inserted line unique while
      // the shared player subject keeps mutual-exclusion conflicts likely.
      const double conf = static_cast<double>(1 + rng.Uniform(255)) / 256.0;
      const std::string line = StringPrintf(
          "player%llu playsFor team%llu_n%llu [%lld,%lld] %s",
          static_cast<unsigned long long>(rng.Uniform(40)),
          static_cast<unsigned long long>(rng.Uniform(8)),
          static_cast<unsigned long long>(serial++),
          static_cast<long long>(begin),
          static_cast<long long>(begin + static_cast<int64_t>(
                                             rng.Uniform(6))),
          FormatDoubleExact(conf).c_str());
      script += "+ " + line + " .\n";
      insert_lines.push_back(line);
    }
    std::vector<rdf::FactId> retract_ids;
    const size_t num_retracts = rng.Uniform(3);
    for (size_t i = 0; i < num_retracts && !live_lines.empty(); ++i) {
      const size_t pick = static_cast<size_t>(rng.Uniform(live_lines.size()));
      const std::string& line = live_lines[pick].first;
      // Retract-by-quad picks the lowest-id live match; only retract lines
      // whose text is unique so both worlds retract the same instance.
      size_t copies = 0;
      for (const auto& entry : live_lines) {
        if (entry.first == line) ++copies;
      }
      if (copies != 1) continue;
      script += "- " + line + " .\n";
      retract_ids.push_back(live_lines[pick].second);
      live_lines.erase(live_lines.begin() + static_cast<ptrdiff_t>(pick));
    }

    // COW world: one atomic script application per engine.
    std::vector<api::EditOutcome> outcomes;
    for (Track& track : tracks) {
      auto outcome = track.engine->ApplyEditScript(script, track.options);
      ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
      outcomes.push_back(std::move(*outcome));
    }

    // Baseline world: the same edits, then a deep clone (the pre-COW
    // publish semantics) that all references are computed against.
    for (const std::string& line : insert_lines) {
      auto id = rdf::ParseFactLine(line + " .", &baseline);
      ASSERT_TRUE(id.ok()) << id.status().ToString();
      live_lines.emplace_back(line, *id);
    }
    for (rdf::FactId id : retract_ids) {
      ASSERT_TRUE(baseline.Retract(id).ok());
    }
    rdf::TemporalGraph deep = baseline.DeepCopy();
    ExpectInvariantsOk(deep);
    ExpectInvariantsOk(baseline);

    const core::ResolveResult scratch =
        ScratchResolve(deep, baseline_rules, core::ResolveOptions());
    const std::string scratch_net = ScratchNetworkRendering(
        deep, baseline_rules, ground::GroundingOptions());
    const std::string scratch_stats = StatsToString(kb::ComputeStatistics(deep));
    const std::string scratch_bytes = rdf::WriteGraphText(deep);
    core::ConflictDetector detector(&deep, baseline_rules);
    auto scratch_report = detector.Detect();
    ASSERT_TRUE(scratch_report.ok()) << scratch_report.status().ToString();
    const std::string scratch_conflicts =
        ConflictsToString(*scratch_report, deep);

    for (size_t t = 0; t < tracks.size(); ++t) {
      SCOPED_TRACE(StringPrintf("track %zu", t));
      Track& track = tracks[t];
      const api::EditOutcome& outcome = outcomes[t];
      auto snap = track.engine->snapshot();
      ASSERT_EQ(snap->version, outcome.version);

      // Resolution bit-identical to the deep-clone scratch reference.
      EXPECT_EQ(outcome.result->objective, scratch.objective);  // bitwise
      EXPECT_EQ(outcome.result->feasible, scratch.feasible);
      EXPECT_EQ(outcome.result->optimal, scratch.optimal);
      EXPECT_EQ(outcome.result->ground_atoms, scratch.ground_atoms);
      EXPECT_EQ(outcome.result->ground_clauses, scratch.ground_clauses);
      EXPECT_EQ(outcome.result->num_components, scratch.num_components);
      EXPECT_EQ(ToLiveRanks(*snap->graph, outcome.result->kept_facts),
                scratch.kept_facts);
      EXPECT_EQ(ToLiveRanks(*snap->graph, outcome.result->removed_facts),
                scratch.removed_facts);

      // The maintained canonical network, byte-for-byte.
      ASSERT_NE(track.engine->incremental_for_tests(), nullptr);
      EXPECT_EQ(RenderNetwork(track.engine->incremental_for_tests()->network(),
                              track.engine->graph_for_tests()->dict()),
                scratch_net);

      // Published statistics and conflict sets match from-scratch ones.
      ASSERT_NE(snap->stats, nullptr);
      EXPECT_EQ(StatsToString(*snap->stats), scratch_stats);
      auto report = snap->DetectConflicts();
      ASSERT_TRUE(report.ok()) << report.status().ToString();
      EXPECT_EQ(ConflictsToString(**report, *snap->graph), scratch_conflicts);

      // The snapshot graph serializes to the same bytes as the deep clone.
      EXPECT_EQ(rdf::WriteGraphText(*snap->graph), scratch_bytes);
      track.bytes_at_publish[snap->version] = scratch_bytes;

      // Chunk-sharing invariants: the snapshot shares every chunk with the
      // writer until the next mutation, and both self-check clean.
      ExpectInvariantsOk(*snap->graph);
      ExpectInvariantsOk(*track.engine->graph_for_tests());
      EXPECT_EQ(rdf::TemporalGraph::CountSharedChunks(
                    *snap->graph, *track.engine->graph_for_tests()),
                snap->graph->NumChunks());

      // A later version never resurrects a retracted fact.
      if (track.prev_snapshot != nullptr &&
          track.prev_snapshot->has_graph()) {
        Status monotone = rdf::TemporalGraph::CheckTombstoneMonotone(
            *track.prev_snapshot->graph, *snap->graph);
        EXPECT_TRUE(monotone.ok()) << monotone.ToString();
      }
      track.prev_snapshot = snap;

      // Interleaved solve: equal options must serve the published result
      // from the snapshot cache, still matching the scratch objective.
      if (step % 2 == 1) {
        auto solved = track.engine->Solve(track.options);
        ASSERT_TRUE(solved.ok()) << solved.status().ToString();
        EXPECT_TRUE(solved->cached);
        EXPECT_EQ(solved->result->objective, scratch.objective);
      }
    }
  }

  // Retained snapshots stay byte-stable after all the later edits, and the
  // ring answers out-of-range versions with the documented statuses.
  for (Track& track : tracks) {
    const auto range = track.engine->RetainedRange();
    EXPECT_EQ(range.second, track.engine->version());
    for (uint64_t v = range.first; v <= range.second; ++v) {
      auto snap = track.engine->SnapshotAt(v);
      ASSERT_TRUE(snap.ok()) << snap.status().ToString();
      if (!(*snap)->has_graph()) continue;
      auto recorded = track.bytes_at_publish.find(v);
      if (recorded == track.bytes_at_publish.end()) continue;
      EXPECT_EQ(rdf::WriteGraphText(*(*snap)->graph), recorded->second)
          << "retained version " << v << " mutated after publish";
    }
    auto future = track.engine->SnapshotAt(track.engine->version() + 5);
    EXPECT_EQ(future.status().code(), StatusCode::kNotFound);
    ASSERT_GT(range.first, 1u);  // enough publishes to evict version 1
    auto evicted = track.engine->SnapshotAt(1);
    EXPECT_EQ(evicted.status().code(), StatusCode::kGone);
  }
}

TEST(SnapshotCowDifferential, EditOfKFactsCopiesOKChunks) {
  // Publish economics: with a ~20-chunk graph, a single-fact edit must
  // copy-on-write at most the chunks it touches (the appended tail and the
  // retracted fact's chunk), never O(#chunks) — the O(delta) claim.
  constexpr size_t kChunk = rdf::TemporalGraph::kChunkSize;
  rdf::TemporalGraph big;
  const size_t num_facts = 20 * kChunk + 100;
  for (size_t i = 0; i < num_facts; ++i) {
    const int64_t begin = static_cast<int64_t>(i % 50);
    auto added = big.AddQuad(
        "s" + std::to_string(i % 977), "p" + std::to_string(i % 7),
        "o" + std::to_string(i), temporal::Interval(begin, begin + 3), 0.5);
    ASSERT_TRUE(added.ok());
  }
  api::Engine engine;
  ASSERT_TRUE(engine.SetGraph(std::move(big)).ok());
  const rdf::TemporalGraph* writer = engine.graph_for_tests();
  ASSERT_NE(writer, nullptr);
  auto snap1 = engine.snapshot();
  const size_t num_chunks = snap1->graph->NumChunks();
  ASSERT_GE(num_chunks, 20u);
  EXPECT_EQ(rdf::TemporalGraph::CountSharedChunks(*snap1->graph, *writer),
            num_chunks);

  // One inserted fact: only the tail chunk is copied.
  const uint64_t before_insert = writer->chunk_copies();
  core::ResolveOptions options;
  ASSERT_TRUE(
      engine.ApplyEditScript("+ sX pY oZ [1,2] 0.5 .\n", options).ok());
  EXPECT_LE(writer->chunk_copies() - before_insert, 1u);
  auto snap2 = engine.snapshot();
  EXPECT_GE(rdf::TemporalGraph::CountSharedChunks(*snap1->graph,
                                                  *snap2->graph),
            num_chunks - 1);

  // k retractions spread across the graph: at most k interior chunks (plus
  // nothing else) get copied, and sharing with the previous snapshot drops
  // by at most k.
  std::string script;
  const size_t k = 5;
  for (size_t j = 0; j < k; ++j) {
    const size_t i = j * 4 * kChunk + j;  // one fact per distant chunk
    const int64_t begin = static_cast<int64_t>(i % 50);
    script += StringPrintf("- s%zu p%zu o%zu [%lld,%lld] 0.5 .\n", i % 977,
                           i % 7, i, static_cast<long long>(begin),
                           static_cast<long long>(begin + 3));
  }
  const uint64_t before_retracts = writer->chunk_copies();
  ASSERT_TRUE(engine.ApplyEditScript(script, options).ok());
  EXPECT_LE(writer->chunk_copies() - before_retracts, k);
  auto snap3 = engine.snapshot();
  EXPECT_GE(rdf::TemporalGraph::CountSharedChunks(*snap2->graph,
                                                  *snap3->graph),
            snap2->graph->NumChunks() - k);

  ExpectInvariantsOk(*writer);
  ExpectInvariantsOk(*snap3->graph);
  Status monotone = rdf::TemporalGraph::CheckTombstoneMonotone(
      *snap1->graph, *snap3->graph);
  EXPECT_TRUE(monotone.ok()) << monotone.ToString();

  // A result-only publish (re-solve under different options) reuses the
  // frozen graph outright — same object, zero chunks copied.
  core::ResolveOptions threshold = options;
  threshold.derived_threshold = 0.25;
  const uint64_t before_solve = writer->chunk_copies();
  auto solved = engine.Solve(threshold);
  ASSERT_TRUE(solved.ok()) << solved.status().ToString();
  EXPECT_FALSE(solved->cached);
  EXPECT_EQ(engine.snapshot()->graph, snap3->graph);
  EXPECT_EQ(writer->chunk_copies(), before_solve);
}

}  // namespace
}  // namespace tecore
