#include <gtest/gtest.h>

#include <cmath>

#include "datagen/generators.h"
#include "ground/grounder.h"
#include "psl/admm.h"
#include "psl/hlmrf.h"
#include "psl/solver.h"
#include "rules/library.h"

namespace tecore {
namespace psl {
namespace {

TEST(HlMrf, EnergyOfHinges) {
  HlMrf mrf(2);
  // max(0, 1 - x0): distance of unit clause (+x0).
  HingePotential pot;
  pot.coefs = {{0, -1.0}};
  pot.offset = 1.0;
  pot.weight = 2.0;
  mrf.AddPotential(pot);
  EXPECT_NEAR(mrf.Energy({0.0, 0.0}), 2.0, 1e-12);
  EXPECT_NEAR(mrf.Energy({1.0, 0.0}), 0.0, 1e-12);
  EXPECT_NEAR(mrf.Energy({0.25, 0.0}), 1.5, 1e-12);
  // Squared version.
  pot.squared = true;
  HlMrf mrf2(1);
  mrf2.AddPotential(pot);
  EXPECT_NEAR(mrf2.Energy({0.5}), 2.0 * 0.25, 1e-12);
}

TEST(HlMrf, BuildFromNetworkTranslatesClauses) {
  rdf::TemporalGraph graph = datagen::RunningExampleGraph(false);
  auto constraints = rules::PaperConstraints();
  ASSERT_TRUE(constraints.ok());
  ground::Grounder grounder(&graph, *constraints);
  auto grounding = grounder.Run();
  ASSERT_TRUE(grounding.ok());
  HlMrf mrf = BuildHlMrf(grounding->network);
  // One hard constraint (the Chelsea/Napoli clash) + soft unit priors.
  EXPECT_EQ(mrf.constraints().size(), 1u);
  EXPECT_EQ(mrf.potentials().size(), graph.NumFacts());
  EXPECT_EQ(mrf.num_vars(), static_cast<int>(grounding->network.NumAtoms()));
}

TEST(Admm, SingleUnitPotentialDrivesVariableUp) {
  // minimize 2*max(0, 1-x) over [0,1]: optimum x=1, energy 0.
  HlMrf mrf(1);
  HingePotential pot;
  pot.coefs = {{0, -1.0}};
  pot.offset = 1.0;
  pot.weight = 2.0;
  mrf.AddPotential(pot);
  AdmmResult result = AdmmSolver(mrf).Solve();
  EXPECT_TRUE(result.converged);
  EXPECT_NEAR(result.x[0], 1.0, 1e-2);
  EXPECT_NEAR(result.energy, 0.0, 1e-2);
}

TEST(Admm, CompetingPotentialsBalanceByWeight) {
  // w_up*max(0,1-x) + w_down*max(0,x): linear, optimum at x=1 since
  // w_up > w_down.
  HlMrf mrf(1);
  HingePotential up;
  up.coefs = {{0, -1.0}};
  up.offset = 1.0;
  up.weight = 3.0;
  mrf.AddPotential(up);
  HingePotential down;
  down.coefs = {{0, 1.0}};
  down.offset = 0.0;
  down.weight = 1.0;
  mrf.AddPotential(down);
  AdmmResult result = AdmmSolver(mrf).Solve();
  EXPECT_NEAR(result.x[0], 1.0, 5e-2);
}

TEST(Admm, SquaredHingesSplitTheDifference) {
  // w*(1-x)^2 + w*x^2 has the interior optimum x = 0.5.
  HlMrf mrf(1);
  HingePotential up;
  up.coefs = {{0, -1.0}};
  up.offset = 1.0;
  up.weight = 1.0;
  up.squared = true;
  mrf.AddPotential(up);
  HingePotential down;
  down.coefs = {{0, 1.0}};
  down.offset = 0.0;
  down.weight = 1.0;
  down.squared = true;
  mrf.AddPotential(down);
  AdmmResult result = AdmmSolver(mrf).Solve();
  EXPECT_NEAR(result.x[0], 0.5, 1e-2);
}

TEST(Admm, HardConstraintEnforced) {
  // Drive both variables up, but constrain x0 + x1 <= 1.
  HlMrf mrf(2);
  for (int v = 0; v < 2; ++v) {
    HingePotential pot;
    pot.coefs = {{v, -1.0}};
    pot.offset = 1.0;
    pot.weight = v == 0 ? 2.0 : 1.0;  // x0 pulled harder
    mrf.AddPotential(pot);
  }
  HardLinearConstraint con;  // x0 + x1 - 1 <= 0
  con.coefs = {{0, 1.0}, {1, 1.0}};
  con.offset = -1.0;
  mrf.AddConstraint(con);
  AdmmOptions options;
  options.max_iterations = 5000;
  AdmmResult result = AdmmSolver(mrf, options).Solve();
  EXPECT_LE(result.x[0] + result.x[1], 1.0 + 5e-2);
  EXPECT_GT(result.x[0], result.x[1]);  // heavier pull wins
}

TEST(Admm, EmptyProblemConverges) {
  HlMrf mrf(0);
  AdmmResult result = AdmmSolver(mrf).Solve();
  EXPECT_TRUE(result.converged);
  EXPECT_TRUE(result.x.empty());
}

TEST(PslSolver, RunningExampleConflictResolved) {
  rdf::TemporalGraph graph = datagen::RunningExampleGraph(false);
  auto constraints = rules::PaperConstraints();
  ASSERT_TRUE(constraints.ok());
  ground::Grounder grounder(&graph, *constraints);
  auto grounding = grounder.Run();
  ASSERT_TRUE(grounding.ok());
  PslSolver solver(grounding->network);
  auto solution = solver.Solve();
  ASSERT_TRUE(solution.ok());
  EXPECT_TRUE(solution->feasible);
  // Napoli (conf 0.6, atom 4) dropped; Chelsea (0.9, atom 0) kept.
  EXPECT_TRUE(solution->atom_values[0]);
  EXPECT_FALSE(solution->atom_values[4]);
}

TEST(PslSolver, RepairFixesRoundingViolations) {
  // Symmetric conflict (equal confidences) can round to both-true;
  // repair must drop one.
  rdf::TemporalGraph graph;
  ASSERT_TRUE(graph
                  .AddQuad("x", "coach", "A", temporal::Interval(0, 10), 0.8)
                  .ok());
  ASSERT_TRUE(graph
                  .AddQuad("x", "coach", "B", temporal::Interval(5, 15), 0.8)
                  .ok());
  auto constraints = rules::PaperConstraints();
  ASSERT_TRUE(constraints.ok());
  ground::Grounder grounder(&graph, *constraints);
  auto grounding = grounder.Run();
  ASSERT_TRUE(grounding.ok());
  PslSolver solver(grounding->network);
  auto solution = solver.Solve();
  ASSERT_TRUE(solution.ok());
  EXPECT_TRUE(solution->feasible);
  EXPECT_FALSE(solution->atom_values[0] && solution->atom_values[1]);
}

TEST(PslSolver, TruthValuesStayInUnitInterval) {
  rdf::TemporalGraph graph = datagen::RunningExampleGraph(true);
  auto inference = rules::PaperInferenceRules();
  auto constraints = rules::PaperConstraints();
  ASSERT_TRUE(inference.ok());
  ASSERT_TRUE(constraints.ok());
  rules::RuleSet rules = *inference;
  rules.Merge(*constraints);
  ground::Grounder grounder(&graph, rules);
  auto grounding = grounder.Run();
  ASSERT_TRUE(grounding.ok());
  PslSolver solver(grounding->network);
  auto solution = solver.Solve();
  ASSERT_TRUE(solution.ok());
  for (double v : solution->truth_values) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
  }
  EXPECT_EQ(solution->truth_values.size(), solution->atom_values.size());
}

}  // namespace
}  // namespace psl
}  // namespace tecore
