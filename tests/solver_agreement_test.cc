#include <gtest/gtest.h>

#include <cmath>

#include "core/conflict.h"
#include "core/resolver.h"
#include "datagen/generators.h"
#include "ground/grounder.h"
#include "mln/solver.h"
#include "psl/solver.h"
#include "rules/library.h"
#include "rules/parser.h"
#include "util/random.h"

namespace tecore {
namespace {

/// Property suite: on randomized conflict-resolution instances, the PSL
/// pipeline must stay feasible and its Boolean objective can never beat
/// the (provably optimal) MLN objective; both must leave zero conflicts.

rdf::TemporalGraph RandomConflictGraph(uint64_t seed, int subjects) {
  Rng rng(seed);
  rdf::TemporalGraph graph;
  for (int s = 0; s < subjects; ++s) {
    const std::string subject = "s" + std::to_string(s);
    const int facts = 2 + static_cast<int>(rng.Uniform(4));
    for (int f = 0; f < facts; ++f) {
      const int64_t b = rng.UniformRange(2000, 2012);
      const int64_t e = b + rng.UniformRange(0, 6);
      const double conf = 0.4 + 0.6 * rng.NextDouble();
      EXPECT_TRUE(graph
                      .AddQuad(subject, "coach",
                               "club" + std::to_string(rng.UniformRange(0, 5)),
                               temporal::Interval(b, e), conf)
                      .ok());
    }
  }
  return graph;
}

class RandomInstances : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomInstances, PslNeverBeatsOptimalMlnAndBothRepair) {
  rdf::TemporalGraph graph = RandomConflictGraph(GetParam(), 12);
  auto constraints = rules::PaperConstraints();
  ASSERT_TRUE(constraints.ok());

  ground::Grounder grounder(&graph, *constraints);
  auto grounding = grounder.Run();
  ASSERT_TRUE(grounding.ok());

  mln::MlnMapSolver mln_solver(grounding->network);
  auto mln_solution = mln_solver.Solve();
  ASSERT_TRUE(mln_solution.ok());
  ASSERT_TRUE(mln_solution->feasible);
  ASSERT_TRUE(mln_solution->optimal);

  psl::PslSolver psl_solver(grounding->network);
  auto psl_solution = psl_solver.Solve();
  ASSERT_TRUE(psl_solution.ok());
  EXPECT_TRUE(psl_solution->feasible);

  // The discrete optimum bounds the rounded relaxation from above.
  EXPECT_LE(psl_solution->objective, mln_solution->objective + 1e-6);
  // And the relaxation shouldn't be terrible on these small instances.
  EXPECT_GE(psl_solution->objective, 0.75 * mln_solution->objective);
}

TEST_P(RandomInstances, ResolverOutputsAreConflictFree) {
  for (rules::SolverKind solver :
       {rules::SolverKind::kMln, rules::SolverKind::kPsl}) {
    rdf::TemporalGraph graph = RandomConflictGraph(GetParam() * 31 + 7, 10);
    auto constraints = rules::PaperConstraints();
    ASSERT_TRUE(constraints.ok());
    core::ResolveOptions options;
    options.solver = solver;
    core::Resolver resolver(&graph, *constraints, options);
    auto result = resolver.Run();
    ASSERT_TRUE(result.ok());
    EXPECT_TRUE(result->feasible);
    core::ConflictDetector recheck(&result->consistent_graph, *constraints);
    auto report = recheck.Detect();
    ASSERT_TRUE(report.ok());
    EXPECT_EQ(report->NumConflicts(), 0u)
        << "solver " << static_cast<int>(solver) << " seed " << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomInstances,
                         ::testing::Range<uint64_t>(1, 16));

TEST(SolverAgreement, KeptWeightDominatesRemovedOnExactPath) {
  // On every random instance, the kept facts must carry at least as much
  // confidence mass as the removed ones (otherwise flipping the choice
  // would improve the MAP objective).
  for (uint64_t seed = 100; seed < 110; ++seed) {
    rdf::TemporalGraph graph = RandomConflictGraph(seed, 8);
    auto constraints = rules::PaperConstraints();
    ASSERT_TRUE(constraints.ok());
    core::ResolveOptions options;
    core::Resolver resolver(&graph, *constraints, options);
    auto result = resolver.Run();
    ASSERT_TRUE(result.ok());
    double kept = 0, removed = 0;
    for (rdf::FactId id : result->kept_facts) {
      kept += graph.fact(id).confidence;
    }
    for (rdf::FactId id : result->removed_facts) {
      removed += graph.fact(id).confidence;
    }
    EXPECT_GE(kept, removed) << "seed " << seed;
  }
}

}  // namespace
}  // namespace tecore
