#include <gtest/gtest.h>

#include <cmath>

#include "datagen/generators.h"
#include "ground/grounder.h"
#include "mln/cutting_plane.h"
#include "mln/solver.h"
#include "mln/translation.h"
#include "rules/library.h"
#include "rules/parser.h"
#include "util/random.h"

namespace tecore {
namespace mln {
namespace {

ground::GroundingResult GroundRunningExample() {
  rdf::TemporalGraph local = datagen::RunningExampleGraph(true);
  auto inference = rules::PaperInferenceRules();
  auto constraints = rules::PaperConstraints();
  EXPECT_TRUE(inference.ok());
  EXPECT_TRUE(constraints.ok());
  rules::RuleSet rules = *inference;
  rules.Merge(*constraints);
  ground::Grounder grounder(&local, rules);
  auto result = grounder.Run();
  EXPECT_TRUE(result.ok());
  return std::move(*result);
}

maxsat::Wcnf RandomWcnf(Rng* rng, int num_vars, int num_clauses) {
  maxsat::Wcnf wcnf(num_vars);
  for (int c = 0; c < num_clauses; ++c) {
    const int len = 1 + static_cast<int>(rng->Uniform(3));
    std::vector<maxsat::Literal> lits;
    for (int i = 0; i < len; ++i) {
      int var = static_cast<int>(rng->Uniform(static_cast<uint64_t>(num_vars)));
      lits.push_back(rng->Bernoulli(0.5) ? maxsat::PosLit(var)
                                         : maxsat::NegLit(var));
    }
    if (rng->Bernoulli(0.25)) {
      wcnf.AddHard(std::move(lits));
    } else {
      wcnf.AddSoft(std::move(lits), 0.1 + rng->NextDouble() * 2.0);
    }
  }
  return wcnf;
}

TEST(Translation, WcnfMirrorsNetwork) {
  ground::GroundingResult grounding = GroundRunningExample();
  maxsat::Wcnf wcnf = BuildWcnf(grounding.network);
  EXPECT_EQ(static_cast<size_t>(wcnf.num_vars()),
            grounding.network.NumAtoms());
  EXPECT_EQ(wcnf.NumClauses(), grounding.network.NumClauses());
}

TEST(Translation, ComponentRenumberingIsDense) {
  ground::GroundingResult grounding = GroundRunningExample();
  auto components = grounding.network.ConnectedComponents();
  size_t total_atoms = 0;
  for (const auto& component : components) {
    std::vector<ground::AtomId> atom_map;
    maxsat::Wcnf wcnf =
        BuildComponentWcnf(grounding.network, component, &atom_map);
    EXPECT_EQ(atom_map.size(), component.atoms.size());
    EXPECT_EQ(static_cast<size_t>(wcnf.num_vars()), component.atoms.size());
    total_atoms += component.atoms.size();
  }
  EXPECT_EQ(total_atoms, grounding.network.NumAtoms());
}

TEST(Translation, IlpEncodingFoldsUnitSofts) {
  maxsat::Wcnf wcnf(2);
  wcnf.AddSoft({maxsat::PosLit(0)}, 2.0);
  wcnf.AddSoft({maxsat::NegLit(1)}, 1.0);
  wcnf.AddHard({maxsat::PosLit(0), maxsat::PosLit(1)});
  ilp::IlpProblem problem = BuildIlp(wcnf);
  // No aux z for the unit softs; none needed for the hard clause either.
  EXPECT_EQ(problem.num_vars, 2);
  EXPECT_DOUBLE_EQ(problem.objective[0], 2.0);
  EXPECT_DOUBLE_EQ(problem.objective[1], -1.0);
  ASSERT_EQ(problem.rows.size(), 1u);
}

TEST(Translation, IlpEncodingAddsAuxForNonUnitSoft) {
  maxsat::Wcnf wcnf(2);
  wcnf.AddSoft({maxsat::PosLit(0), maxsat::NegLit(1)}, 1.5);
  ilp::IlpProblem problem = BuildIlp(wcnf);
  EXPECT_EQ(problem.num_vars, 3);  // 2 atoms + 1 aux
  EXPECT_DOUBLE_EQ(problem.objective[2], 1.5);
  ASSERT_EQ(problem.rows.size(), 1u);
  EXPECT_EQ(problem.rows[0].op, ilp::RowOp::kGe);
}

TEST(CuttingPlane, AgreesWithExactMaxSatOnRandomInstances) {
  Rng rng(4242);
  for (int trial = 0; trial < 30; ++trial) {
    maxsat::Wcnf wcnf =
        RandomWcnf(&rng, 2 + static_cast<int>(rng.Uniform(7)),
                   3 + static_cast<int>(rng.Uniform(14)));
    maxsat::MaxSatResult exact =
        maxsat::ExactMaxSatSolver(wcnf).Solve();
    CpaStats stats;
    maxsat::MaxSatResult cpa =
        SolveWithCpa(wcnf, ilp::BranchBoundSolver::Options(), &stats);
    maxsat::MaxSatResult direct =
        SolveWithIlpDirect(wcnf, ilp::BranchBoundSolver::Options());
    EXPECT_EQ(exact.feasible, cpa.feasible) << wcnf.ToString();
    EXPECT_EQ(exact.feasible, direct.feasible);
    if (exact.feasible) {
      EXPECT_NEAR(cpa.violated_weight, exact.violated_weight, 1e-6)
          << wcnf.ToString();
      EXPECT_NEAR(direct.violated_weight, exact.violated_weight, 1e-6)
          << wcnf.ToString();
    }
  }
}

TEST(CuttingPlane, ActivatesOnlyViolatedClauses) {
  // Units keep everything true; the lone hard clause is satisfied by that
  // state, so CPA must converge without activating it.
  maxsat::Wcnf wcnf(3);
  wcnf.AddSoft({maxsat::PosLit(0)}, 1.0);
  wcnf.AddSoft({maxsat::PosLit(1)}, 1.0);
  wcnf.AddSoft({maxsat::PosLit(2)}, 1.0);
  wcnf.AddHard({maxsat::PosLit(0), maxsat::PosLit(1)});
  CpaStats stats;
  maxsat::MaxSatResult result =
      SolveWithCpa(wcnf, ilp::BranchBoundSolver::Options(), &stats);
  ASSERT_TRUE(result.feasible);
  EXPECT_EQ(stats.clauses_activated, 0u);
  EXPECT_EQ(stats.iterations, 1);
  EXPECT_NEAR(result.violated_weight, 0.0, 1e-9);
}

TEST(CuttingPlane, ActivatesConflictClauses) {
  // Two units in conflict: the hard clause IS violated by the all-true
  // greedy state, so CPA needs a second iteration.
  maxsat::Wcnf wcnf(2);
  wcnf.AddSoft({maxsat::PosLit(0)}, 0.9);
  wcnf.AddSoft({maxsat::PosLit(1)}, 0.6);
  wcnf.AddHard({maxsat::NegLit(0), maxsat::NegLit(1)});
  CpaStats stats;
  maxsat::MaxSatResult result =
      SolveWithCpa(wcnf, ilp::BranchBoundSolver::Options(), &stats);
  ASSERT_TRUE(result.feasible);
  EXPECT_GE(stats.iterations, 2);
  EXPECT_EQ(stats.clauses_activated, 1u);
  EXPECT_TRUE(result.assignment[0]);
  EXPECT_FALSE(result.assignment[1]);
}

TEST(MlnMapSolver, AllBackendsAgreeOnRunningExample) {
  ground::GroundingResult grounding = GroundRunningExample();
  const MlnBackend backends[] = {MlnBackend::kExactMaxSat,
                                 MlnBackend::kIlpCpa,
                                 MlnBackend::kIlpDirect};
  double reference = -1;
  for (MlnBackend backend : backends) {
    MlnSolverOptions options;
    options.backend = backend;
    MlnMapSolver solver(grounding.network, options);
    auto solution = solver.Solve();
    ASSERT_TRUE(solution.ok());
    EXPECT_TRUE(solution->feasible) << MlnBackendName(backend);
    EXPECT_TRUE(solution->optimal) << MlnBackendName(backend);
    if (reference < 0) {
      reference = solution->objective;
    } else {
      EXPECT_NEAR(solution->objective, reference, 1e-6)
          << MlnBackendName(backend);
    }
  }
}

TEST(MlnMapSolver, MonolithicMatchesComponentwise) {
  ground::GroundingResult grounding = GroundRunningExample();
  MlnSolverOptions with;
  with.use_components = true;
  MlnSolverOptions without;
  without.use_components = false;
  auto a = MlnMapSolver(grounding.network, with).Solve();
  auto b = MlnMapSolver(grounding.network, without).Solve();
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NEAR(a->objective, b->objective, 1e-6);
  EXPECT_GT(a->num_components, 1u);
}

TEST(MlnMapSolver, WalkSatBackendIsFeasibleOnRunningExample) {
  ground::GroundingResult grounding = GroundRunningExample();
  MlnSolverOptions options;
  options.backend = MlnBackend::kWalkSat;
  options.walksat.max_flips = 50000;
  auto solution = MlnMapSolver(grounding.network, options).Solve();
  ASSERT_TRUE(solution.ok());
  EXPECT_TRUE(solution->feasible);
  EXPECT_FALSE(solution->optimal);  // LS never proves optimality
}

}  // namespace
}  // namespace mln
}  // namespace tecore
