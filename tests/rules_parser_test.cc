#include <gtest/gtest.h>

#include "rules/ast.h"
#include "rules/lexer.h"
#include "rules/library.h"
#include "rules/parser.h"

namespace tecore {
namespace rules {
namespace {

using logic::AllenAtom;

TEST(Lexer, TokenizesOperatorsAndIdentifiers) {
  auto tokens = Tokenize("quad(x, playsFor, y, t) -> quad(x, worksFor, y, t)");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ(tokens->front().kind, TokenKind::kIdent);
  EXPECT_EQ(tokens->front().text, "quad");
  // quad ( x , playsFor , y , t ) -> quad ( x , worksFor , y , t ) EOF
  EXPECT_EQ(tokens->size(), 22u);
}

TEST(Lexer, HandlesPrimedVariables) {
  auto tokens = Tokenize("t' t'' x1");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].text, "t'");
  EXPECT_EQ((*tokens)[1].text, "t''");
  EXPECT_EQ((*tokens)[2].text, "x1");
}

TEST(Lexer, HandlesUnicodeOperators) {
  auto tokens = Tokenize("a ∧ b → c ≠ d ∩ e");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[1].kind, TokenKind::kAnd);
  EXPECT_EQ((*tokens)[3].kind, TokenKind::kArrow);
  EXPECT_EQ((*tokens)[5].kind, TokenKind::kNe);
  EXPECT_EQ((*tokens)[7].kind, TokenKind::kCap);
}

TEST(Lexer, DistinguishesFloatFromStatementDot) {
  auto tokens = Tokenize("w = 2.5 .");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[2].kind, TokenKind::kNumber);
  EXPECT_EQ((*tokens)[2].text, "2.5");
  EXPECT_EQ((*tokens)[3].kind, TokenKind::kDot);
}

TEST(Lexer, SkipsComments) {
  auto tokens = Tokenize("# a comment\nx // more\ny");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].text, "x");
  EXPECT_EQ((*tokens)[1].text, "y");
}

TEST(Lexer, RejectsUnterminatedString) {
  auto tokens = Tokenize("\"oops");
  EXPECT_FALSE(tokens.ok());
}

TEST(Parser, ParsesInclusionRuleF1) {
  auto rule = ParseSingleRule(
      "f1: quad(x, playsFor, y, t) -> quad(x, worksFor, y, t) w = 2.5 .");
  ASSERT_TRUE(rule.ok()) << rule.status().ToString();
  EXPECT_EQ(rule->name, "f1");
  EXPECT_FALSE(rule->hard);
  EXPECT_DOUBLE_EQ(rule->weight, 2.5);
  ASSERT_EQ(rule->body.size(), 1u);
  EXPECT_EQ(rule->head.kind, HeadKind::kQuads);
  ASSERT_EQ(rule->head.quads.size(), 1u);
  EXPECT_TRUE(rule->IsInferenceRule());
  // x, y are entity vars; t is interval sort.
  EXPECT_EQ(rule->vars.NumVars(), 3);
  EXPECT_EQ(rule->vars.sort(*rule->vars.Find("t")), logic::Sort::kInterval);
}

TEST(Parser, ParsesIntervalIntersectionHead) {
  auto rule = ParseSingleRule(
      "f2: quad(x, worksFor, y, t) & quad(y, locatedIn, z, t') "
      "[intersects(t, t')] -> quad(x, livesIn, z, t ^ t') w = 1.6 .");
  ASSERT_TRUE(rule.ok()) << rule.status().ToString();
  EXPECT_EQ(rule->conditions.size(), 1u);
  ASSERT_EQ(rule->head.quads.size(), 1u);
  EXPECT_EQ(rule->head.quads[0].time.kind(),
            logic::IntervalExpr::Kind::kIntersect);
}

TEST(Parser, ParsesAliasFormOfIntersection) {
  // The paper's notation: t'' = t ∩ t'.
  auto rule = ParseSingleRule(
      "quad(x, worksFor, y, t) ∧ quad(y, locatedIn, z, t') "
      "∧ intersects(t, t') → quad(x, livesIn, z, t'' = t ∩ t') w = 1.6 .");
  ASSERT_TRUE(rule.ok()) << rule.status().ToString();
  EXPECT_EQ(rule->head.quads[0].time.kind(),
            logic::IntervalExpr::Kind::kIntersect);
}

TEST(Parser, ParsesArithmeticCondition) {
  auto rule = ParseSingleRule(
      "f3: quad(x, playsFor, y, t) & quad(x, birthDate, z, t') "
      "[t - t' < 20] -> quad(x, type, TeenPlayer, t) w = 2.9 .");
  ASSERT_TRUE(rule.ok()) << rule.status().ToString();
  ASSERT_EQ(rule->conditions.size(), 1u);
  EXPECT_TRUE(
      std::holds_alternative<logic::NumericAtom>(rule->conditions[0]));
}

TEST(Parser, ParsesHardConstraintWithAllenHead) {
  auto rule = ParseSingleRule(
      "c1: quad(x, birthDate, y, t) & quad(x, deathDate, z, t') "
      "-> before(t, t') .");
  ASSERT_TRUE(rule.ok()) << rule.status().ToString();
  EXPECT_TRUE(rule->hard);
  EXPECT_TRUE(rule->IsConstraint());
  EXPECT_EQ(rule->head.kind, HeadKind::kCondition);
  ASSERT_TRUE(rule->head.condition.has_value());
  EXPECT_TRUE(std::holds_alternative<AllenAtom>(*rule->head.condition));
}

TEST(Parser, ParsesDisjointnessConstraintC2) {
  auto rule = ParseSingleRule(
      "c2: quad(x, coach, y, t) & quad(x, coach, z, t') & y != z "
      "-> disjoint(t, t') .");
  ASSERT_TRUE(rule.ok()) << rule.status().ToString();
  // y != z goes into conditions, not the body.
  EXPECT_EQ(rule->body.size(), 2u);
  ASSERT_EQ(rule->conditions.size(), 1u);
  EXPECT_TRUE(
      std::holds_alternative<logic::TermCompareAtom>(rule->conditions[0]));
  const auto& head = std::get<AllenAtom>(*rule->head.condition);
  EXPECT_EQ(head.relations, temporal::AllenSet::Disjoint());
}

TEST(Parser, ParsesEqualityGeneratingHeadC3) {
  auto rule = ParseSingleRule(
      "c3: quad(x, bornIn, y, t) & quad(x, bornIn, z, t') "
      "[overlaps(t, t')] -> y = z .");
  ASSERT_TRUE(rule.ok()) << rule.status().ToString();
  EXPECT_EQ(rule->head.kind, HeadKind::kCondition);
  EXPECT_TRUE(
      std::holds_alternative<logic::TermCompareAtom>(*rule->head.condition));
}

TEST(Parser, ParsesFalseHead) {
  auto rule = ParseSingleRule(
      "quad(x, spouse, y, t) & quad(x, spouse, x, t') -> false .");
  ASSERT_TRUE(rule.ok()) << rule.status().ToString();
  EXPECT_EQ(rule->head.kind, HeadKind::kFalse);
}

TEST(Parser, ParsesDisjunctiveHead) {
  auto rule = ParseSingleRule(
      "quad(x, memberOf, y, t) -> quad(x, worksFor, y, t) | "
      "quad(x, affiliatedWith, y, t) w = 1.0 .");
  ASSERT_TRUE(rule.ok()) << rule.status().ToString();
  EXPECT_EQ(rule->head.quads.size(), 2u);
}

TEST(Parser, ParsesIntervalLiteralInBody) {
  auto rule = ParseSingleRule(
      "quad(x, coach, y, [2000,2004]) -> quad(x, worksFor, y, [2000,2004]) "
      "w = 1 .");
  ASSERT_TRUE(rule.ok()) << rule.status().ToString();
  EXPECT_EQ(rule->body[0].time.kind(), logic::IntervalExpr::Kind::kConst);
  EXPECT_EQ(rule->body[0].time.constant(), temporal::Interval(2000, 2004));
}

TEST(Parser, ParsesWeightPrefixForm) {
  auto rule =
      ParseSingleRule("2.5: quad(x, playsFor, y, t) -> quad(x, worksFor, y, t)");
  ASSERT_TRUE(rule.ok()) << rule.status().ToString();
  EXPECT_FALSE(rule->hard);
  EXPECT_DOUBLE_EQ(rule->weight, 2.5);
}

TEST(Parser, ParsesMultipleRules) {
  auto set = ParseRules(R"(
    f1: quad(x, playsFor, y, t) -> quad(x, worksFor, y, t) w = 2.5 .
    c2: quad(x, coach, y, t) & quad(x, coach, z, t') & y != z
        -> disjoint(t, t') .
  )");
  ASSERT_TRUE(set.ok()) << set.status().ToString();
  EXPECT_EQ(set->Size(), 2u);
  EXPECT_EQ(set->InferenceRules().size(), 1u);
  EXPECT_EQ(set->Constraints().size(), 1u);
}

TEST(Parser, VariableConventionDistinguishesConstants) {
  auto rule = ParseSingleRule(
      "quad(CR, coach, y, t) -> quad(CR, worksFor, y, t) w = 1 .");
  ASSERT_TRUE(rule.ok()) << rule.status().ToString();
  EXPECT_FALSE(rule->body[0].subject.is_variable());  // CR is a constant
  EXPECT_TRUE(rule->body[0].object.is_variable());    // y is a variable
}

TEST(Parser, QuestionMarkAlwaysVariable) {
  auto rule = ParseSingleRule(
      "quad(?player, coach, y, t) -> quad(?player, worksFor, y, t) w = 1 .");
  ASSERT_TRUE(rule.ok()) << rule.status().ToString();
  EXPECT_TRUE(rule->body[0].subject.is_variable());
}

TEST(Parser, IntegerObjectLiteral) {
  auto rule = ParseSingleRule(
      "quad(x, birthDate, 1951, t) -> quad(x, bornInYear, 1951, t) w = 1 .");
  ASSERT_TRUE(rule.ok()) << rule.status().ToString();
  EXPECT_TRUE(rule->body[0].object.constant().is_int());
  EXPECT_EQ(rule->body[0].object.constant().int_value(), 1951);
}

TEST(Parser, ErrorsOnMissingArrow) {
  auto rule = ParseSingleRule("quad(x, coach, y, t) w = 2 .");
  EXPECT_FALSE(rule.ok());
  EXPECT_EQ(rule.status().code(), StatusCode::kParseError);
}

TEST(Parser, ErrorsOnEmptyBody) {
  auto rule = ParseSingleRule("-> quad(x, coach, y, t) .");
  EXPECT_FALSE(rule.ok());
}

TEST(Parser, ErrorsOnSortConflict) {
  // t used both as interval (4th position) and entity (object).
  auto rule = ParseSingleRule("quad(x, coach, t, t) -> false .");
  EXPECT_FALSE(rule.ok());
}

TEST(Parser, RoundTripsThroughToString) {
  const char* text =
      "c2: quad(x, coach, y, t) & quad(x, coach, z, t') & y != z "
      "-> disjoint(t, t') .";
  auto rule = ParseSingleRule(text);
  ASSERT_TRUE(rule.ok());
  auto reparsed = ParseSingleRule(rule->ToString());
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString()
                             << "\nrendered: " << rule->ToString();
  EXPECT_EQ(reparsed->body.size(), rule->body.size());
  EXPECT_EQ(reparsed->conditions.size(), rule->conditions.size());
  EXPECT_EQ(reparsed->head.kind, rule->head.kind);
}

TEST(Library, PaperRuleSetsParse) {
  auto inference = PaperInferenceRules();
  ASSERT_TRUE(inference.ok()) << inference.status().ToString();
  EXPECT_EQ(inference->Size(), 3u);
  auto constraints = PaperConstraints();
  ASSERT_TRUE(constraints.ok()) << constraints.status().ToString();
  EXPECT_EQ(constraints->Size(), 3u);
  for (const Rule& rule : constraints->rules) {
    EXPECT_TRUE(rule.hard);
    EXPECT_TRUE(rule.IsConstraint());
  }
}

TEST(Library, BuildersProduceValidRules) {
  auto disjoint = MakeTemporalDisjointness("coach");
  ASSERT_TRUE(disjoint.ok());
  auto functional = MakeFunctionalDuringOverlap("bornIn");
  ASSERT_TRUE(functional.ok());
  auto precede = MakePrecedence("birthDate", "playsFor");
  ASSERT_TRUE(precede.ok());
  auto incl = MakeInclusion("playsFor", "worksFor", 2.5);
  ASSERT_TRUE(incl.ok());
  EXPECT_FALSE(incl->hard);
  auto hard_incl = MakeInclusion("playsFor", "worksFor", 0, /*hard=*/true);
  ASSERT_TRUE(hard_incl.ok());
  EXPECT_TRUE(hard_incl->hard);
}

TEST(Library, FootballAndWikidataSetsParse) {
  auto football = FootballConstraints();
  ASSERT_TRUE(football.ok()) << football.status().ToString();
  EXPECT_EQ(football->Size(), 3u);
  auto wikidata = WikidataConstraints();
  ASSERT_TRUE(wikidata.ok()) << wikidata.status().ToString();
  EXPECT_EQ(wikidata->Size(), 5u);
}

}  // namespace
}  // namespace rules
}  // namespace tecore
