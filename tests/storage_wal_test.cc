// Write-ahead-log unit tests: record framing, CRC verification, torn-tail
// truncation at *every* byte offset of a trailing record, scan-only reads
// (verify tool), reset, and injected I/O errors. The torn-tail sweep is
// the core durability property: whatever prefix of the final record a
// crash leaves behind, Open recovers exactly the acknowledged records and
// physically truncates the garbage.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "storage/fault.h"
#include "storage/fs.h"
#include "storage/kb_storage.h"
#include "storage/verify.h"
#include "storage/wal.h"
#include "util/file.h"

namespace tecore {
namespace storage {
namespace {

std::string TestPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

WalRecord Rec(WalRecordType type, uint64_t version, std::string payload) {
  WalRecord record;
  record.type = type;
  record.version = version;
  record.payload = std::move(payload);
  return record;
}

TEST(Wal, FrameLayout) {
  const std::string frame =
      Wal::EncodeRecord(Rec(WalRecordType::kEditBatch, 7, "abc"));
  // u32 len + u32 crc + u8 type + u64 version + payload.
  ASSERT_EQ(frame.size(), 4u + 4u + 1u + 8u + 3u);
  const auto* bytes = reinterpret_cast<const uint8_t*>(frame.data());
  const uint32_t frame_len = static_cast<uint32_t>(bytes[0]) |
                             (static_cast<uint32_t>(bytes[1]) << 8) |
                             (static_cast<uint32_t>(bytes[2]) << 16) |
                             (static_cast<uint32_t>(bytes[3]) << 24);
  EXPECT_EQ(frame_len, 1u + 8u + 3u);  // everything after the crc field
  EXPECT_EQ(bytes[8], 1u);             // kEditBatch
  EXPECT_EQ(bytes[9], 7u);             // version, little-endian
  EXPECT_EQ(frame.substr(17), "abc");
}

TEST(Wal, AppendThenReopenRecoversRecords) {
  const std::string path = TestPath("wal_roundtrip.log");
  RemoveFile(path);
  {
    Wal wal;
    ASSERT_TRUE(wal.Open(path).ok());
    EXPECT_TRUE(wal.scan().records.empty());
    ASSERT_TRUE(
        wal.Append(Rec(WalRecordType::kEditBatch, 1, "+ f1\n"), true).ok());
    ASSERT_TRUE(
        wal.Append(Rec(WalRecordType::kRulesSet, 2, "rule text"), true).ok());
    ASSERT_TRUE(
        wal.Append(Rec(WalRecordType::kVersionMark, 3, ""), false).ok());
  }
  Wal wal;
  ASSERT_TRUE(wal.Open(path).ok());
  const auto& scan = wal.scan();
  EXPECT_FALSE(scan.torn_tail);
  ASSERT_EQ(scan.records.size(), 3u);
  EXPECT_EQ(scan.records[0].type, WalRecordType::kEditBatch);
  EXPECT_EQ(scan.records[0].version, 1u);
  EXPECT_EQ(scan.records[0].payload, "+ f1\n");
  EXPECT_EQ(scan.records[1].type, WalRecordType::kRulesSet);
  EXPECT_EQ(scan.records[1].payload, "rule text");
  EXPECT_EQ(scan.records[2].type, WalRecordType::kVersionMark);
  EXPECT_EQ(scan.records[2].version, 3u);
  EXPECT_EQ(scan.valid_bytes, scan.file_bytes);
}

// The central recovery sweep: a log of K intact records plus every
// possible prefix of record K+1 must recover exactly the K records — and
// Open must physically truncate the tail so a subsequent append never
// interleaves with garbage.
TEST(Wal, TornTailTruncatedAtEveryByteOffset) {
  std::string intact;
  intact += Wal::EncodeRecord(Rec(WalRecordType::kEditBatch, 1, "+ a\n"));
  intact += Wal::EncodeRecord(Rec(WalRecordType::kRulesSet, 2, "r"));
  const std::string last =
      Wal::EncodeRecord(Rec(WalRecordType::kEditBatch, 3, "+ bbb\n"));
  for (size_t cut = 0; cut < last.size(); ++cut) {
    const std::string path = TestPath("wal_torn.log");
    RemoveFile(path);
    ASSERT_TRUE(
        util::WriteStringToFile(path, intact + last.substr(0, cut)).ok());
    Wal wal;
    ASSERT_TRUE(wal.Open(path).ok()) << "cut=" << cut;
    EXPECT_EQ(wal.scan().records.size(), 2u) << "cut=" << cut;
    EXPECT_EQ(wal.scan().torn_tail, cut != 0) << "cut=" << cut;
    EXPECT_EQ(wal.scan().valid_bytes, intact.size());
    // The garbage is gone from disk, not just skipped.
    auto size = FileSize(path);
    ASSERT_TRUE(size.ok());
    EXPECT_EQ(*size, intact.size()) << "cut=" << cut;
    // And the log accepts new appends cleanly after truncation.
    ASSERT_TRUE(
        wal.Append(Rec(WalRecordType::kVersionMark, 3, ""), true).ok());
    Wal reopened;
    ASSERT_TRUE(reopened.Open(path).ok());
    ASSERT_EQ(reopened.scan().records.size(), 3u) << "cut=" << cut;
    EXPECT_EQ(reopened.scan().records[2].type, WalRecordType::kVersionMark);
  }
}

TEST(Wal, CorruptMiddleRecordDropsItAndEverythingAfter) {
  const std::string path = TestPath("wal_corrupt.log");
  RemoveFile(path);
  std::string bytes;
  bytes += Wal::EncodeRecord(Rec(WalRecordType::kEditBatch, 1, "+ a\n"));
  const size_t second_start = bytes.size();
  bytes += Wal::EncodeRecord(Rec(WalRecordType::kEditBatch, 2, "+ b\n"));
  bytes += Wal::EncodeRecord(Rec(WalRecordType::kEditBatch, 3, "+ c\n"));
  bytes[second_start + 12] ^= 0xFF;  // flip a payload-covered byte
  ASSERT_TRUE(util::WriteStringToFile(path, bytes).ok());
  Wal wal;
  ASSERT_TRUE(wal.Open(path).ok());
  // Record 3 is intact bytes-wise but unreachable: a log is a prefix, and
  // trusting anything after a corrupt record would reorder history.
  ASSERT_EQ(wal.scan().records.size(), 1u);
  EXPECT_EQ(wal.scan().records[0].version, 1u);
  EXPECT_TRUE(wal.scan().torn_tail);
}

TEST(Wal, ImpossibleFrameLengthIsATornTail) {
  const std::string path = TestPath("wal_badlen.log");
  RemoveFile(path);
  std::string bytes =
      Wal::EncodeRecord(Rec(WalRecordType::kEditBatch, 1, "+ a\n"));
  // A frame_len below the fixed header (type+version) or absurdly large
  // must not be trusted — either would read garbage or try to allocate it.
  bytes += std::string("\x03\x00\x00\x00", 4) + std::string(8, 'x');
  ASSERT_TRUE(util::WriteStringToFile(path, bytes).ok());
  Wal wal;
  ASSERT_TRUE(wal.Open(path).ok());
  EXPECT_EQ(wal.scan().records.size(), 1u);
  EXPECT_TRUE(wal.scan().torn_tail);

  RemoveFile(path);
  bytes = Wal::EncodeRecord(Rec(WalRecordType::kEditBatch, 1, "+ a\n"));
  bytes += std::string("\xff\xff\xff\x7f", 4) + std::string(16, 'x');
  ASSERT_TRUE(util::WriteStringToFile(path, bytes).ok());
  Wal wal2;
  ASSERT_TRUE(wal2.Open(path).ok());
  EXPECT_EQ(wal2.scan().records.size(), 1u);
  EXPECT_TRUE(wal2.scan().torn_tail);
}

TEST(Wal, ScanFileNeverTruncates) {
  const std::string path = TestPath("wal_scanonly.log");
  RemoveFile(path);
  std::string bytes =
      Wal::EncodeRecord(Rec(WalRecordType::kEditBatch, 1, "+ a\n"));
  bytes += "torn garbage";
  ASSERT_TRUE(util::WriteStringToFile(path, bytes).ok());
  auto scan = Wal::ScanFile(path);
  ASSERT_TRUE(scan.ok());
  EXPECT_EQ(scan->records.size(), 1u);
  EXPECT_TRUE(scan->torn_tail);
  EXPECT_LT(scan->valid_bytes, scan->file_bytes);
  auto size = FileSize(path);
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(*size, bytes.size());  // verify is read-only
}

TEST(Wal, ResetEmptiesTheLog) {
  const std::string path = TestPath("wal_reset.log");
  RemoveFile(path);
  Wal wal;
  ASSERT_TRUE(wal.Open(path).ok());
  ASSERT_TRUE(
      wal.Append(Rec(WalRecordType::kEditBatch, 1, "+ a\n"), true).ok());
  ASSERT_TRUE(wal.Reset().ok());
  auto size = FileSize(path);
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(*size, 0u);
  ASSERT_TRUE(
      wal.Append(Rec(WalRecordType::kEditBatch, 5, "+ b\n"), true).ok());
  Wal reopened;
  ASSERT_TRUE(reopened.Open(path).ok());
  ASSERT_EQ(reopened.scan().records.size(), 1u);
  EXPECT_EQ(reopened.scan().records[0].version, 5u);
}

TEST(Wal, InjectedAppendFailureIsIoError) {
  const std::string path = TestPath("wal_iofail.log");
  RemoveFile(path);
  Wal wal;
  ASSERT_TRUE(wal.Open(path).ok());
  InjectIoFailures("wal:append", 1);
  Status failed = wal.Append(Rec(WalRecordType::kEditBatch, 1, "+ a\n"), true);
  EXPECT_EQ(failed.code(), StatusCode::kIoError);
  InjectIoFailures("wal:append", 0);
  // The failure consumed nothing: the next append succeeds and the log
  // holds exactly that one record.
  ASSERT_TRUE(
      wal.Append(Rec(WalRecordType::kEditBatch, 1, "+ a\n"), true).ok());
  Wal reopened;
  ASSERT_TRUE(reopened.Open(path).ok());
  EXPECT_EQ(reopened.scan().records.size(), 1u);
}

TEST(Wal, FailedSyncPoisonsLog) {
  const std::string path = TestPath("wal_poison.log");
  RemoveFile(path);
  Wal wal;
  ASSERT_TRUE(wal.Open(path).ok());
  ASSERT_TRUE(
      wal.Append(Rec(WalRecordType::kEditBatch, 1, "+ a\n"), true).ok());
  // A failed fsync may have dropped dirty pages while the *next* fsync
  // reports clean, so a sync failure must poison the log: acknowledging
  // later appends would claim durability the kernel no longer guarantees.
  InjectIoFailures("wal:sync", 1);
  Status failed = wal.Append(Rec(WalRecordType::kEditBatch, 2, "+ b\n"), true);
  EXPECT_EQ(failed.code(), StatusCode::kIoError);
  InjectIoFailures("wal:sync", 0);
  EXPECT_TRUE(wal.poisoned());
  // Even with injection disarmed, the poisoned log refuses all writes.
  EXPECT_EQ(
      wal.Append(Rec(WalRecordType::kEditBatch, 3, "+ c\n"), true).code(),
      StatusCode::kIoError);
  EXPECT_EQ(wal.Sync().code(), StatusCode::kIoError);
  EXPECT_EQ(wal.Reset().code(), StatusCode::kIoError);
  // Reopen rescans the on-disk state from scratch and clears the poison;
  // the acknowledged record (version 1) is intact.
  Wal reopened;
  ASSERT_TRUE(reopened.Open(path).ok());
  EXPECT_FALSE(reopened.poisoned());
  ASSERT_GE(reopened.scan().records.size(), 1u);
  EXPECT_EQ(reopened.scan().records[0].version, 1u);
  ASSERT_TRUE(
      reopened.Append(Rec(WalRecordType::kEditBatch, 4, "+ d\n"), true).ok());
}

// ------------------------------------------------------------ KbStorage

TEST(KbStorage, EditTailServesSseResume) {
  const std::string dir = TestPath("kbstorage_tail");
  ASSERT_TRUE(KbStorage::Destroy(dir).ok());
  StorageOptions options;
  auto opened = KbStorage::Open(dir, options);
  ASSERT_TRUE(opened.ok());
  auto storage = *opened;
  ASSERT_TRUE(
      storage->Append(Rec(WalRecordType::kEditBatch, 1, "+ a\n")).ok());
  ASSERT_TRUE(
      storage->Append(Rec(WalRecordType::kVersionMark, 2, "")).ok());
  ASSERT_TRUE(
      storage->Append(Rec(WalRecordType::kEditBatch, 3, "+ b\n")).ok());
  bool complete = false;
  auto edits = storage->EditsSince(1, &complete);
  EXPECT_TRUE(complete);
  ASSERT_EQ(edits.size(), 1u);  // version marks are not edits
  EXPECT_EQ(edits[0].first, 3u);
  EXPECT_EQ(edits[0].second, "+ b\n");
  edits = storage->EditsSince(0, &complete);
  EXPECT_TRUE(complete);
  EXPECT_EQ(edits.size(), 2u);
  // A graph replacement invalidates script replay below its version.
  storage->ResetEditTail(4);
  edits = storage->EditsSince(3, &complete);
  EXPECT_FALSE(complete);
  EXPECT_TRUE(edits.empty());
  edits = storage->EditsSince(4, &complete);
  EXPECT_TRUE(complete);
  EXPECT_TRUE(edits.empty());
}

TEST(KbStorage, ReopenSeedsEditTailFromWal) {
  const std::string dir = TestPath("kbstorage_reopen_tail");
  ASSERT_TRUE(KbStorage::Destroy(dir).ok());
  StorageOptions options;
  {
    auto opened = KbStorage::Open(dir, options);
    ASSERT_TRUE(opened.ok());
    ASSERT_TRUE(
        (*opened)->Append(Rec(WalRecordType::kEditBatch, 1, "+ a\n")).ok());
  }
  auto reopened = KbStorage::Open(dir, options);
  ASSERT_TRUE(reopened.ok());
  bool complete = false;
  auto edits = (*reopened)->EditsSince(0, &complete);
  EXPECT_TRUE(complete);
  ASSERT_EQ(edits.size(), 1u);
  EXPECT_EQ(edits[0].second, "+ a\n");
  ASSERT_TRUE(KbStorage::Destroy(dir).ok());
}

TEST(VerifyKbDir, ReportsCleanAndCorruptStores) {
  const std::string dir = TestPath("verify_kb");
  ASSERT_TRUE(KbStorage::Destroy(dir).ok());
  StorageOptions options;
  {
    auto opened = KbStorage::Open(dir, options);
    ASSERT_TRUE(opened.ok());
    ASSERT_TRUE(
        (*opened)->Append(Rec(WalRecordType::kEditBatch, 1, "+ a\n")).ok());
  }
  auto report = VerifyKbDir(dir);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->ok());
  EXPECT_FALSE(report->has_checkpoint);
  EXPECT_EQ(report->wal_records, 1u);
  EXPECT_EQ(report->recoverable_version, 1u);
  EXPECT_FALSE(report->wal_torn_tail);

  // Append garbage: verify reports the torn tail but stays "clean" (it is
  // recoverable) and does not modify the file.
  auto log = ReadFile(JoinPath(dir, "wal.log"));
  ASSERT_TRUE(log.ok());
  ASSERT_TRUE(
      util::WriteStringToFile(JoinPath(dir, "wal.log"), *log + "garbage")
          .ok());
  report = VerifyKbDir(dir);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->ok());
  EXPECT_TRUE(report->wal_torn_tail);
  EXPECT_LT(report->wal_valid_bytes, report->wal_file_bytes);
  ASSERT_TRUE(KbStorage::Destroy(dir).ok());
}

}  // namespace
}  // namespace storage
}  // namespace tecore
