#include <gtest/gtest.h>

#include <cmath>

#include "datagen/generators.h"
#include "kb/statistics.h"
#include "kb/weighting.h"

namespace tecore {
namespace kb {
namespace {

TEST(Weighting, LogOddsBasics) {
  EXPECT_NEAR(ConfidenceToWeight(0.5), 0.0, 1e-12);
  EXPECT_NEAR(ConfidenceToWeight(0.9), std::log(9.0), 1e-9);
  EXPECT_LT(ConfidenceToWeight(0.1), 0.0);
  // Certainty clamps instead of going infinite.
  EXPECT_LE(ConfidenceToWeight(1.0), kMaxLogOdds + 1e-12);
  EXPECT_GE(ConfidenceToWeight(0.0), -kMaxLogOdds - 1e-12);
}

TEST(Weighting, SigmoidInvertsLogOdds) {
  for (double c : {0.1, 0.25, 0.5, 0.75, 0.9, 0.99}) {
    EXPECT_NEAR(WeightToConfidence(ConfidenceToWeight(c)), c, 1e-9) << c;
  }
}

TEST(Weighting, SchemesDiffer) {
  EXPECT_DOUBLE_EQ(FactPriorWeight(0.7, FactWeighting::kConfidence), 0.7);
  EXPECT_NEAR(FactPriorWeight(0.7, FactWeighting::kLogOdds),
              std::log(0.7 / 0.3), 1e-9);
  // Confidence scheme is always positive; log-odds goes negative < 0.5.
  EXPECT_GT(FactPriorWeight(0.3, FactWeighting::kConfidence), 0.0);
  EXPECT_LT(FactPriorWeight(0.3, FactWeighting::kLogOdds), 0.0);
}

TEST(Statistics, RunningExampleNumbers) {
  rdf::TemporalGraph graph = datagen::RunningExampleGraph(false);
  GraphStatistics stats = ComputeStatistics(graph);
  EXPECT_EQ(stats.num_facts, 5u);
  EXPECT_EQ(stats.num_distinct_subjects, 1u);   // CR
  EXPECT_EQ(stats.num_distinct_predicates, 3u); // coach/playsFor/birthDate
  EXPECT_EQ(stats.num_distinct_objects, 5u);
  EXPECT_EQ(stats.min_time, 1951);
  EXPECT_EQ(stats.max_time, 2017);
  EXPECT_NEAR(stats.mean_confidence, (0.9 + 0.7 + 0.5 + 1.0 + 0.6) / 5.0,
              1e-12);
  // Most frequent predicate first.
  EXPECT_EQ(stats.predicate_counts[0].first, "coach");
  EXPECT_EQ(stats.predicate_counts[0].second, 3u);
}

TEST(Statistics, ConfidenceHistogramBins) {
  rdf::TemporalGraph graph;
  ASSERT_TRUE(graph.AddQuad("a", "p", "b", temporal::Interval(0, 1), 0.05).ok());
  ASSERT_TRUE(graph.AddQuad("a", "p", "c", temporal::Interval(0, 1), 0.10).ok());
  ASSERT_TRUE(graph.AddQuad("a", "p", "d", temporal::Interval(0, 1), 0.95).ok());
  ASSERT_TRUE(graph.AddQuad("a", "p", "e", temporal::Interval(0, 1), 1.00).ok());
  GraphStatistics stats = ComputeStatistics(graph);
  EXPECT_EQ(stats.confidence_histogram[0], 2u);  // (0, 0.1]
  EXPECT_EQ(stats.confidence_histogram[9], 2u);  // (0.9, 1]
  size_t total = 0;
  for (size_t bin : stats.confidence_histogram) total += bin;
  EXPECT_EQ(total, graph.NumFacts());
}

TEST(Statistics, EmptyGraph) {
  rdf::TemporalGraph graph;
  GraphStatistics stats = ComputeStatistics(graph);
  EXPECT_EQ(stats.num_facts, 0u);
  EXPECT_EQ(stats.min_time, 0);
  EXPECT_EQ(stats.max_time, 0);
  EXPECT_EQ(stats.mean_confidence, 0.0);
  // Rendering must not crash on the empty case.
  EXPECT_FALSE(stats.ToString().empty());
}

TEST(Statistics, ReportMentionsKeyNumbers) {
  rdf::TemporalGraph graph = datagen::RunningExampleGraph(false);
  std::string report = ComputeStatistics(graph).ToString();
  EXPECT_NE(report.find("coach"), std::string::npos);
  EXPECT_NE(report.find("[1951, 2017]"), std::string::npos);
}

}  // namespace
}  // namespace kb
}  // namespace tecore
